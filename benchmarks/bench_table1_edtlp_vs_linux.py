"""Table 1 — EDTLP vs the Linux scheduler, 1-8 workers.

The paper's numbers: EDTLP 28.46 -> 43.32 s; Linux stairs 28.42 ->
115.51 s; EDTLP up to 2.6x faster and within 1.5x of the ideal.
"""

from conftest import run_once

from repro.analysis import (
    PAPER_TABLE1_EDTLP,
    PAPER_TABLE1_LINUX,
    paper_comparison,
    table1_experiment,
)


def test_table1(benchmark, record_table):
    result = run_once(
        benchmark, lambda: table1_experiment(tasks_per_bootstrap=400)
    )
    text = result.render()
    text += "\n\n" + paper_comparison(
        "EDTLP vs paper", result.xs, list(PAPER_TABLE1_EDTLP),
        result.series["edtlp"], label_name="workers",
    )
    text += "\n\n" + paper_comparison(
        "Linux vs paper", result.xs, list(PAPER_TABLE1_LINUX),
        result.series["linux"], label_name="workers",
    )
    record_table("table1_edtlp_vs_linux", text)

    edtlp_t = result.series["edtlp"]
    linux_t = result.series["linux"]
    # Who wins: EDTLP at every oversubscribed point.
    assert all(e < l for e, l in zip(edtlp_t[2:], linux_t[2:]))
    # By what factor: >2.4x at 8 workers (paper: 2.67x).
    assert linux_t[-1] / edtlp_t[-1] > 2.4
    # EDTLP stays within ~1.5x of constant-time ideal.
    assert edtlp_t[-1] / edtlp_t[0] < 1.6
    # The Linux stairs: odd worker counts jump, even ones do not.
    assert linux_t[2] > 1.7 * linux_t[1]
    assert linux_t[3] < 1.15 * linux_t[2]
