"""Ablations of the design choices DESIGN.md calls out.

Each test isolates one mechanism of the runtime and shows its
contribution: the MGPS history window, adaptive loop unbalancing, the
granularity governor, the EDTLP context-switch cost, and the
spin-contention model behind the Linux baseline.
"""

from conftest import run_once

from repro import BladeParams, CellParams, Workload, run_experiment
from repro.analysis import format_table
from repro.core.llp import LLPConfig
from repro.core.schedulers import edtlp, linux, mgps, static_hybrid
from repro.workloads import FixedTraceWorkload, mixed_granularity_trace


def test_ablation_mgps_history_window(benchmark, record_table):
    """Window length trades reactivity against hysteresis (Section 5.4
    uses window = n_spes = 8)."""

    def sweep():
        rows = []
        wl = Workload(bootstraps=12, tasks_per_bootstrap=300)
        for window in (2, 4, 8, 16, 32):
            r = run_experiment(mgps(history_window=window), wl)
            rows.append(
                [window, r.makespan, r.llp_invocations, r.llp_mode_switches]
            )
        return rows

    rows = run_once(benchmark, sweep)
    record_table(
        "ablation_history_window",
        format_table(
            ["window", "makespan [s]", "LLP invocations", "mode switches"],
            rows,
            title="MGPS history window (12 bootstraps: 8 + adaptive tail)",
        ),
    )
    times = {w: t for w, t, _, _ in rows}
    # The paper's window=8 performs within 10% of the best choice.
    assert times[8] <= 1.10 * min(times.values())


def test_ablation_adaptive_unbalancing(benchmark, record_table):
    """Master head-start compensation (Section 5.3's purposeful load
    unbalancing) vs a frozen equal split."""

    def run_pair():
        wl = Workload(bootstraps=1, tasks_per_bootstrap=400)
        out = {}
        for label, adaptive in (("adaptive", True), ("frozen", False)):
            spec = static_hybrid(
                4, n_processes=1, llp_config=LLPConfig(adaptive=adaptive)
            )
            out[label] = run_experiment(spec, wl)
        return out

    out = run_once(benchmark, run_pair)
    record_table(
        "ablation_adaptive_unbalancing",
        format_table(
            ["variant", "makespan [s]", "total join idle [ms]",
             "idle/invocation [us]"],
            [
                [
                    k,
                    r.makespan,
                    r.extras["llp_join_idle"] * 1e3,
                    r.extras["llp_join_idle"]
                    / max(1, r.extras["llp_invocations_model"]) * 1e6,
                ]
                for k, r in out.items()
            ],
            title="LLP adaptive load unbalancing (1 bootstrap, 4 SPEs/loop)",
        ),
    )
    # Adaptation reduces total master idle time at the join.
    assert (
        out["adaptive"].extras["llp_join_idle"]
        < out["frozen"].extras["llp_join_idle"]
    )
    assert out["adaptive"].makespan <= 1.02 * out["frozen"].makespan


def test_ablation_granularity_governor(benchmark, record_table):
    """On a stream with fine-grained kernels, throttling off-loads is the
    difference between winning and losing to the PPE."""

    def run_pair():
        traces = [mixed_granularity_trace(n_tasks=300, index=i, seed=i)
                  for i in range(4)]
        wl = FixedTraceWorkload(traces)
        on = run_experiment(edtlp(), wl)
        off = run_experiment(edtlp(granularity_enabled=False), wl)
        return on, off

    on, off = run_once(benchmark, run_pair)
    record_table(
        "ablation_granularity",
        format_table(
            ["governor", "makespan [ms]", "off-loads", "PPE fallbacks"],
            [
                ["enabled", on.makespan * 1e3, on.offloads, on.ppe_fallbacks],
                ["disabled", off.makespan * 1e3, off.offloads,
                 off.ppe_fallbacks],
            ],
            title="Granularity test on a mixed coarse/fine task stream",
        ),
    )
    assert on.makespan < off.makespan
    assert on.ppe_fallbacks > 0


def test_ablation_context_switch_cost(benchmark, record_table):
    """EDTLP's feasibility depends on cheap user-level switches: the
    paper notes 1.5 us tolerates up to 7 switches per 96 us task."""

    def sweep():
        rows = []
        wl = Workload(bootstraps=8, tasks_per_bootstrap=300)
        for cs_us in (0.5, 1.5, 5.0, 20.0, 100.0):
            blade = BladeParams(
                cell=CellParams(context_switch=cs_us * 1e-6)
            )
            r = run_experiment(edtlp(), wl, blade=blade)
            rows.append([cs_us, r.makespan, r.ppe_context_switches])
        return rows

    rows = run_once(benchmark, sweep)
    record_table(
        "ablation_context_switch",
        format_table(
            ["switch cost [us]", "makespan [s]", "switches"],
            rows,
            title="EDTLP sensitivity to PPE context-switch cost (8 workers)",
        ),
    )
    times = [t for _, t, _ in rows]
    # Monotone degradation; 100 us switches wreck the event-driven model.
    assert times[-1] > 1.3 * times[1]
    assert times == sorted(times)


def test_ablation_spin_contention(benchmark, record_table):
    """The Linux baseline depends on spinning processes polluting the
    sibling SMT context only lightly; treating a spinner as a full
    computing thread would overstate the baseline's slowdown at w=2."""

    def run_pair():
        wl = Workload(bootstraps=2, tasks_per_bootstrap=300)
        out = {}
        for label, weight in (("polling (0.2)", 0.2), ("full (1.0)", 1.0)):
            blade = BladeParams(cell=CellParams(spin_contention=weight))
            out[label] = run_experiment(linux(), wl, blade=blade)
        return out

    out = run_once(benchmark, run_pair)
    record_table(
        "ablation_spin_contention",
        format_table(
            ["spinner weight", "makespan [s]"],
            [[k, r.makespan] for k, r in out.items()],
            title="Linux baseline, 2 workers: SMT weight of a spinning thread",
        ),
    )
    assert out["polling (0.2)"].makespan < out["full (1.0)"].makespan


def test_ablation_mgps_vs_oracle(benchmark, record_table):
    """Section 5.4's framing: the static schemes need 'an oracle for the
    future'; MGPS must track the oracle's pick without one."""
    from repro import Workload
    from repro.core import run_experiment
    from repro.core.oracle import OracleSelector
    from repro.core.schedulers import edtlp as _edtlp
    from repro.core.schedulers import mgps as _mgps
    from repro.core.schedulers import static_hybrid as _static

    def sweep():
        oracle = OracleSelector(
            candidates=[_edtlp(), _static(2), _static(4)]
        )
        rows = []
        for b in (1, 2, 4, 8, 12, 16):
            wl = Workload(bootstraps=b, tasks_per_bootstrap=200)
            choice = oracle.choose(wl)
            m = run_experiment(_mgps(), wl)
            rows.append(
                [b, choice.best_name, choice.best.makespan, m.makespan,
                 m.makespan / choice.best.makespan]
            )
        return rows

    rows = run_once(benchmark, sweep)
    record_table(
        "ablation_oracle",
        format_table(
            ["bootstraps", "oracle pick", "oracle [s]", "MGPS [s]",
             "MGPS/oracle"],
            rows,
            title="MGPS vs the oracle-guided static scheduler",
        ),
    )
    # The oracle's pick changes across the sweep (it needs the future);
    # MGPS stays within 10% of it everywhere without that knowledge.
    assert len({r[1] for r in rows}) >= 2
    assert all(r[4] <= 1.10 for r in rows)
