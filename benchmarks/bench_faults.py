"""Fault-handling overhead — tolerance must be free when nothing fails.

The retry/watchdog/fallback machinery wraps every off-load as soon as a
fault plan is attached, so its cost is paid even on runs where no fault
ever fires.  This benchmark times the tracked MGPS workload three ways —
no fault machinery at all, a *null* fault plan (tolerant path armed but
silent), and a fixed small storm (two SPE kills plus transient off-load
and DMA error rates) — and records the summary to the *tracked*
repo-root ``BENCH_faults.json`` baseline.

Two invariants are asserted here and re-checked by ``repro bench
--check``:

* the zero-fault tolerant run stays within a few percent of the plain
  fast path (the watchdog deadline must never fire on a healthy run);
* both perturbed runs produce application results *bit-identical* to
  the fault-free run (``digest_match``) — faults may only stretch the
  timeline, never change what was computed.
"""

from conftest import run_once

from repro.obs.bench import measure_faults


def test_fault_overhead(benchmark, record_json):
    payload = run_once(benchmark, measure_faults)

    tolerant = payload["zero_fault_tolerant"]
    faulty = payload["faulty"]

    # The headline invariant: same answers, different timeline.
    assert tolerant["digest_match"], (
        "the tolerant off-load path changed application results on a "
        "run with zero injected faults"
    )
    assert faulty["digest_match"], (
        "recovery (retries / blacklists / PPE fallbacks) lost or "
        "duplicated task results under the storm plan"
    )

    # Tolerance machinery is near-free when healthy: no retries, no
    # fallbacks, and single-digit-percent makespan overhead.
    assert tolerant["offload_retries"] == 0
    assert tolerant["retry_fallbacks"] == 0
    assert tolerant["overhead_ratio"] < 1.10, (
        f"zero-fault tolerant path costs "
        f"{(tolerant['overhead_ratio'] - 1) * 100:.1f}% over the fast "
        f"path; the watchdog or backoff is firing on healthy off-loads"
    )

    # The storm actually exercised the machinery and the run degraded
    # gracefully instead of hanging or shedding work.
    assert faulty["spe_kills"] == 2
    assert faulty["live_spes"] <= 6
    assert faulty["offload_retries"] > 0
    assert faulty["slowdown_ratio"] >= 1.0

    # Fleet-tier resilience: the seeded chaos soak (randomized kills,
    # flaps, stragglers, link degrades against hedging + breakers) must
    # lose nothing and change no digests, and the deadline-enforcement
    # cell must account for every admitted job exactly once.
    fleet = payload["fleet_faults"]
    assert fleet["lost_jobs"] == 0, (
        "the chaos soak lost jobs; failover/hedging dropped work"
    )
    assert fleet["digests_identical"], (
        "fleet faults changed at least one job's result digest"
    )
    assert fleet["invariants_ok"], "a chaos-plan invariant was violated"
    assert fleet["deadline_conservation_ok"], (
        "deadline shedding double-counted or leaked a job"
    )
    assert fleet["deadline_aborts"] > 0  # the enforcement cell fired

    record_json("BENCH_faults", payload, root=True)
