"""The tracked scheduler ladder — the repo's benchmark trajectory.

Times serial, EDTLP, static EDTLP-LLP4 and MGPS on the Figure-8-style
workload (few bootstraps, many tasks: the regime where task-level
parallelism alone cannot fill the SPEs and MGPS must add loop-level
parallelism) and records the makespans, off-load counts and
speedups to the *tracked* repo-root ``BENCH_core.json``.

Every non-``_wall`` field is deterministic, so the committed file is a
regression gate: ``repro bench --check`` (or
``python benchmarks/check_bench.py``) re-measures and diffs.  A diff in
this file inside a PR is a deliberate statement that scheduler behavior
changed.
"""

from conftest import run_once

from repro.obs.bench import measure_core


def test_scheduler_ladder(benchmark, record_json):
    payload = run_once(benchmark, measure_core)

    rows = payload["schedulers"]
    speedup = payload["speedup_over_serial"]
    # The paper's ordering must hold on this workload: parallelism helps,
    # and the adaptive scheduler beats pure task-level parallelism.
    assert rows["edtlp"]["makespan_s"] < rows["serial"]["makespan_s"]
    assert rows["mgps"]["makespan_s"] <= rows["edtlp"]["makespan_s"]
    assert rows["mgps"]["llp_invocations"] > 0, (
        "MGPS never engaged loop-level parallelism on the Figure-8 "
        "workload; the U estimator is broken"
    )
    assert speedup["mgps"] >= 1.0

    # Per-LoopSchedule rows on the always-LLP hybrid.  The static row is
    # the same spec as the ladder's edtlp-llp4 row, so the two must agree
    # exactly; every schedule must actually run loops.
    schedules = payload["llp_schedules"]
    assert set(schedules) >= {"static", "dynamic", "guided", "adaptive"}
    assert schedules["static"]["makespan_s"] == rows["edtlp-llp4"]["makespan_s"]
    for name, row in schedules.items():
        assert row["llp_invocations"] > 0, (
            f"loop schedule {name!r} never ran a parallel loop"
        )

    record_json("BENCH_core", payload, root=True)
