"""Figure 10 — Cell vs Intel Xeon (2x, HT) vs IBM Power5.

Paper claims: Cell runs RAxML ~4x faster than the dual Hyper-Threaded
Xeon system and 5-10% faster than the Power5 once the problem reaches 8+
bootstraps; below that the Power5's strong threads win.
"""

from conftest import run_once

from repro.analysis import SWEEP_LARGE, SWEEP_SMALL, fig10_sweep


def test_fig10a_small_counts(benchmark, record_table):
    result = run_once(
        benchmark,
        lambda: fig10_sweep(SWEEP_SMALL, tasks_per_bootstrap=300),
    )
    record_table("fig10a_platforms", result.render())

    xs = result.xs
    cell = dict(zip(xs, result.series["Cell (MGPS)"]))
    xeon = dict(zip(xs, result.series["Intel Xeon"]))
    p5 = dict(zip(xs, result.series["IBM Power5"]))
    # Cell beats the Xeon everywhere, by a wide margin at scale.
    assert all(cell[b] < xeon[b] for b in xs)
    assert xeon[16] / cell[16] > 3.0
    # Power5 wins below 8 bootstraps, Cell from 8 on.  In the 10-14
    # transition zone (bootstrap counts that don't divide into full
    # 8-SPE waves) our simulated tail is slightly more expensive than the
    # paper's, so the claim there is "at worst a near-tie".
    assert p5[2] < cell[2]
    for b in (8, 16):
        assert cell[b] < p5[b]
    for b in (10, 12, 14):
        assert cell[b] < 1.20 * p5[b]


def test_fig10b_large_counts(benchmark, record_table):
    result = run_once(
        benchmark,
        lambda: fig10_sweep(SWEEP_LARGE, tasks_per_bootstrap=150),
    )
    record_table("fig10b_platforms", result.render())

    xs = result.xs
    cell = dict(zip(xs, result.series["Cell (MGPS)"]))
    xeon = dict(zip(xs, result.series["Intel Xeon"]))
    p5 = dict(zip(xs, result.series["IBM Power5"]))
    assert 3.0 < xeon[128] / cell[128] < 5.0
    # 5-10% over the Power5 at scale.
    for b in (32, 64, 128):
        assert 1.0 < p5[b] / cell[b] < 1.2
