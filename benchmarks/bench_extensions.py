"""Extension studies beyond the paper's published tables.

* alignment-length sensitivity of loop-level parallelism (the paper's
  Section 5.3 remark, quantified up to the 51,089-nt mammal alignment it
  cites in Section 3);
* memory/locality-aware SPE selection (the paper's stated future work);
* power- and cost-efficiency ratios (claimed qualitatively in Sections
  5.6 and 6).
"""

from conftest import run_once

from repro import Workload, edtlp, mgps, run_experiment, static_hybrid
from repro.analysis import fig10_sweep, format_table
from repro.analysis.efficiency_study import efficiency_table
from repro.workloads import RAXML_42SC


def test_extension_alignment_length(benchmark, record_table):
    """LLP speedup grows with alignment length (more loop iterations to
    distribute, better compute-to-overhead ratio)."""

    def sweep():
        rows = []
        for sites in (600, 1167, 3000, 10000, 51089):
            prof = RAXML_42SC.scaled_to_sites(sites)
            wl = Workload(bootstraps=1, tasks_per_bootstrap=200,
                          profile=prof)
            serial = run_experiment(edtlp(n_processes=1), wl).makespan
            llp5 = run_experiment(
                static_hybrid(5, n_processes=1), wl
            ).makespan
            llp8 = run_experiment(
                static_hybrid(8, n_processes=1), wl
            ).makespan
            rows.append(
                [sites, prof.loop_iterations, serial,
                 serial / llp5, serial / llp8]
            )
        return rows

    rows = run_once(benchmark, sweep)
    record_table(
        "extension_alignment_length",
        format_table(
            ["sites", "loop iters", "serial [s]", "LLP5 speedup",
             "LLP8 speedup"],
            rows,
            title="LLP speedup vs alignment length (1 bootstrap)",
        ),
    )
    speedups5 = [r[3] for r in rows]
    # Monotone improvement with alignment length; the 42_SC point sits
    # at the paper's ~1.55x; the 51k-nt alignment more than doubles.
    assert speedups5 == sorted(speedups5)
    assert 1.4 < speedups5[1] < 1.7
    assert speedups5[-1] > 2.0
    # At 42_SC size, 8 SPEs lose to 5; at 51k nt they win.
    assert rows[1][4] < rows[1][3]
    assert rows[-1][4] > rows[-1][3]


def test_extension_locality_aware(benchmark, record_table):
    """Locality-aware SPE selection on many interleaved working sets."""
    from repro.cell.machine import CellMachine
    from repro.core.runtime import EDTLPRuntime, ProcContext
    from repro.mpi.master_worker import WorkDispenser
    from repro.mpi.process import mpi_worker
    from repro.sim.engine import Environment
    from repro.workloads import FixedTraceWorkload, interleaved_locality_trace

    def run_pair():
        out = {}
        for aware in (False, True):
            env = Environment()
            machine = CellMachine(env)
            rt = EDTLPRuntime(env, machine, locality_aware=aware)
            wl = FixedTraceWorkload(
                [interleaved_locality_trace(n_keys=8, tasks_per_key=60,
                                            working_set_kb=100)]
            )
            disp = WorkDispenser(env, 1, 1)
            ctx = ProcContext(rank=0, cell_id=0,
                              thread=machine.cores[0].thread("m0"))
            p = env.process(mpi_worker(ctx, rt, disp, wl))
            env.run_until_complete(p)
            out[aware] = (env.now, rt.stats)
        return out

    out = run_once(benchmark, run_pair)
    rows = []
    for aware, (makespan, st) in out.items():
        label = "locality-aware" if aware else "LIFO pool"
        rows.append([label, makespan * 1e3, st.data_hits, st.data_misses,
                     st.data_bytes_transferred // 1024])
    record_table(
        "extension_locality",
        format_table(
            ["policy", "makespan [ms]", "data hits", "data misses",
             "DMA [KiB]"],
            rows,
            title="Memory-aware SPE selection, 8 interleaved 100 KiB "
                  "working sets",
        ),
    )
    t_unaware, s_unaware = out[False]
    t_aware, s_aware = out[True]
    assert t_aware < t_unaware
    assert s_aware.data_misses < 0.2 * s_unaware.data_misses


def test_extension_efficiency_ratios(benchmark, record_table):
    """Cell's power/cost-performance edge over Xeon and Power5."""

    def build():
        sweep = fig10_sweep((32,), tasks_per_bootstrap=200)
        makespans = {
            name: series[0] for name, series in sweep.series.items()
        }
        return makespans

    makespans = run_once(benchmark, build)
    table = efficiency_table(makespans, bootstraps=32)
    record_table("extension_efficiency", table)

    from repro.analysis.efficiency_study import DEFAULT_ECONOMICS as E

    cell_e = E["Cell (MGPS)"].energy_joules(makespans["Cell (MGPS)"])
    p5_e = E["IBM Power5"].energy_joules(makespans["IBM Power5"])
    xeon_e = E["Intel Xeon"].energy_joules(makespans["Intel Xeon"])
    # Cell wins energy per analysis against both.
    assert cell_e < p5_e
    assert cell_e < xeon_e
    # And cost-performance by a wide margin.
    cell_cp = makespans["Cell (MGPS)"] * E["Cell (MGPS)"].price_usd
    p5_cp = makespans["IBM Power5"] * E["IBM Power5"].price_usd
    assert cell_cp < 0.25 * p5_cp


def test_extension_bsp_straggler(benchmark, record_table):
    """Generalization (Section 6): MGPS on imbalanced bulk-synchronous
    MPI workloads — the hybrid MPI/OpenMP shape the paper claims its
    schedulers extend to."""
    from repro.core import run_bsp_experiment
    from repro.core.schedulers import edtlp as _edtlp, mgps as _mgps
    from repro.workloads import BSPWorkload

    def sweep():
        rows = []
        for imbalance in (0.0, 1.0, 2.0, 4.0):
            wl = BSPWorkload(
                n_processes=8, iterations=8, tasks_per_iteration=60,
                imbalance=imbalance, seed=3,
            )
            e = run_bsp_experiment(_edtlp(), wl)
            m = run_bsp_experiment(_mgps(), wl)
            rows.append(
                [1 + imbalance, e.makespan * 1e3, m.makespan * 1e3,
                 e.makespan / m.makespan, m.llp_invocations]
            )
        return rows

    rows = run_once(benchmark, sweep)
    record_table(
        "extension_bsp",
        format_table(
            ["straggler load", "EDTLP [ms]", "MGPS [ms]", "gain",
             "LLP invocations"],
            rows,
            title="BSP straggler acceleration (8 ranks, 8 barriers)",
        ),
    )
    gains = [r[3] for r in rows]
    # Neutral when balanced, growing gains with imbalance.
    assert 0.97 < gains[0] < 1.05
    assert gains[1] > 1.08
    assert gains[-1] > 1.25
    assert gains == sorted(gains)


def test_extension_cluster_scaling(benchmark, record_table):
    """Section 5.5's scale-out argument: spreading 100 bootstraps across
    dual-Cell blades shrinks per-blade bags until multigrain scheduling
    pays; MGPS's advantage over EDTLP grows with the blade count."""
    from repro.core.cluster import run_cluster_experiment
    from repro.core.schedulers import edtlp as _edtlp, mgps as _mgps

    def sweep():
        rows = []
        for n_blades in (1, 2, 4, 12, 25):
            e = run_cluster_experiment(_edtlp(), 100, n_blades,
                                       tasks_per_bootstrap=100)
            m = run_cluster_experiment(_mgps(), 100, n_blades,
                                       tasks_per_bootstrap=100)
            rows.append(
                [n_blades, 100 // n_blades, e.makespan, m.makespan,
                 e.makespan / m.makespan, m.total_llp_invocations]
            )
        return rows

    rows = run_once(benchmark, sweep)
    record_table(
        "extension_cluster",
        format_table(
            ["blades", "bootstraps/blade", "EDTLP [s]", "MGPS [s]",
             "gain", "LLP invocations"],
            rows,
            title="100 bootstraps across dual-Cell blades (Section 5.5)",
        ),
    )
    gains = {r[0]: r[4] for r in rows}
    # MGPS never loses, and the gain spikes once per-blade bags drop
    # below the SPE count (4/blade at 25 blades).  Around 8-9
    # bootstraps/blade (12 blades) the paper's floor(n/T) degree formula
    # floors to 1 and the gain dips — an honest limitation we report.
    assert all(g >= 0.99 for g in gains.values())
    assert gains[25] > 1.25
    assert gains[25] > gains[4] > 1.0
