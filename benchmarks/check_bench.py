#!/usr/bin/env python
"""Benchmark regression gate: current measurement vs committed baselines.

Executable wrapper over :func:`repro.obs.bench.check_baselines` —
re-measures the tracked scheduler ladder, the fault-tolerance
scenarios, the serving-layer SLO grid, the workflow-DAG grid and the
kernel throughput grid, then diffs them against the committed
repo-root ``BENCH_core.json``, ``BENCH_obs.json``,
``BENCH_faults.json``, ``BENCH_serve.json``, ``BENCH_dag.json`` and
``BENCH_perf.json`` baselines.  Exits 1 on drift.  The dag baseline
also carries semantic gates that hold regardless of what was written:
a repeat workflow submission must hit the stage cache on 100% of
stages with a digest-identical result, bootstopping must cancel at
least 30% of the converging fan-out, and job conservation must be
exact with zero losses.

Two classes of fields, two comparison rules:

* **Deterministic fields** (everything not ending in ``_wall``) are
  seeded-simulation outputs — makespans, off-load counts, SLO grids,
  event/job counts.  They are diffed with per-metric tolerances and any
  drift fails the gate.
* **Wall-clock fields** (``_wall`` suffix — ``seconds_wall``,
  ``*_ratio_wall``, raw timings) are informational only and are never
  diffed: wall time varies run-to-run and machine-to-machine, so a
  baseline that compared it would flake.  The one deliberate
  exception: ``BENCH_perf.json``'s ``*_per_sec_wall`` throughput rates
  are enforced as *one-sided floors* — the fresh measurement may be
  faster without limit, but falling more than the regression tolerance
  below the committed rate fails the gate.  The tolerance defaults to
  :data:`repro.obs.bench.PERF_REGRESSION_TOLERANCE` (30%) and can be
  loosened or tightened per invocation with ``--perf-tolerance`` or
  the ``REPRO_PERF_TOLERANCE`` environment variable (useful on noisy
  shared CI runners).

Equivalent to ``python -m repro bench --check``.  Run it after any
scheduler change; if the drift is intended, refresh the baselines with
``python -m repro bench --write`` and the benchmark suite, and commit
the diff — for throughput floors that refresh *ratchets* the gate to
the newly measured rate.
"""

import argparse
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).parent.parent / "src"))

from repro.obs.bench import (  # noqa: E402
    PERF_TOLERANCE_ENV,
    check_baselines,
    find_repo_root,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--perf-tolerance",
        type=float,
        default=None,
        metavar="FRACTION",
        help=(
            "allowed one-sided throughput regression for BENCH_perf.json "
            "floors, as a fraction (e.g. 0.5 allows a 50%% slow-down); "
            f"overrides ${PERF_TOLERANCE_ENV} and the built-in default"
        ),
    )
    args = parser.parse_args(argv)

    ok, report = check_baselines(
        root=find_repo_root(pathlib.Path(__file__)),
        perf_floor_tolerance=args.perf_tolerance,
    )
    print(report)
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
