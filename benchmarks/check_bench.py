#!/usr/bin/env python
"""Benchmark regression gate: current measurement vs committed baselines.

Thin executable wrapper over :func:`repro.obs.bench.check_baselines` —
re-measures the tracked scheduler ladder, the fault-tolerance scenarios
and the serving-layer SLO grid, then diffs every deterministic
(non-``_wall``) metric against the committed repo-root
``BENCH_core.json``, ``BENCH_obs.json``, ``BENCH_faults.json`` and
``BENCH_serve.json`` with per-metric tolerances.  Exits 1 on drift.

Equivalent to ``python -m repro bench --check``.  Run it after any
scheduler change; if the drift is intended, refresh the baselines with
``python -m repro bench --write`` and the benchmark suite, and commit
the diff.
"""

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).parent.parent / "src"))

from repro.obs.bench import check_baselines, find_repo_root  # noqa: E402


def main() -> int:
    ok, report = check_baselines(root=find_repo_root(pathlib.Path(__file__)))
    print(report)
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
