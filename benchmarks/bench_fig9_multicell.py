"""Figure 9 — the same comparison on a dual-Cell blade (16 SPEs).

Paper shapes: qualitatively identical to one Cell but the hybrid wins up
to 8 bootstraps (8 extra SPEs are available for LLP), EDTLP dominates
beyond, MGPS outperforms both; and two Cells deliver almost twice the
performance of one.
"""

from conftest import run_once

from repro.analysis import SWEEP_LARGE, SWEEP_SMALL, figure_sweep


def test_fig9a_small_counts(benchmark, record_table):
    result = run_once(
        benchmark,
        lambda: figure_sweep(
            SWEEP_SMALL, tasks_per_bootstrap=300, n_cells=2,
            name="Figure 9a: two Cells, 1-16 bootstraps (seconds)",
        ),
    )
    record_table("fig9a_multicell", result.render())

    xs = result.xs
    llp2 = dict(zip(xs, result.series["EDTLP-LLP2"]))
    ed = dict(zip(xs, result.series["EDTLP"]))
    mg = dict(zip(xs, result.series["MGPS"]))
    # Hybrid window extends to 8 bootstraps on 16 SPEs.
    for b in (2, 4, 8):
        assert llp2[b] < ed[b]
    # EDTLP wins beyond.
    for b in (12, 16):
        assert ed[b] < llp2[b]
    # MGPS at least matches the better of the two everywhere.
    for b in xs:
        assert mg[b] <= 1.10 * min(llp2[b], ed[b])


def test_fig9b_large_counts(benchmark, record_table):
    result = run_once(
        benchmark,
        lambda: figure_sweep(
            SWEEP_LARGE, tasks_per_bootstrap=150, n_cells=2,
            name="Figure 9b: two Cells, 1-128 bootstraps (seconds)",
        ),
    )
    record_table("fig9b_multicell", result.render())

    xs = result.xs
    mg = dict(zip(xs, result.series["MGPS"]))
    ed = dict(zip(xs, result.series["EDTLP"]))
    for b in (64, 128):
        assert abs(mg[b] / ed[b] - 1) < 0.05


def test_fig9_two_cells_double_one(benchmark, record_table):
    def sweep_both():
        one = figure_sweep((16, 32), tasks_per_bootstrap=200, n_cells=1)
        two = figure_sweep((16, 32), tasks_per_bootstrap=200, n_cells=2)
        return one, two

    one, two = run_once(benchmark, sweep_both)
    lines = ["Two Cells vs one (MGPS makespans, seconds)"]
    for i, b in enumerate(one.xs):
        r = one.series["MGPS"][i] / two.series["MGPS"][i]
        lines.append(
            f"  {b:3d} bootstraps: {one.series['MGPS'][i]:7.2f} -> "
            f"{two.series['MGPS'][i]:7.2f}  ({r:.2f}x)"
        )
        assert 1.6 < r <= 2.2
    record_table("fig9_scaling", "\n".join(lines))
