"""The tracked serving-layer SLO grid — online behavior as a trajectory.

Runs the multi-tenant serving simulation once per (dispatch policy,
elasticity) cell — static-block, least-loaded and work-stealing, each
with the fleet fixed at max size and with the MGPS-style autoscaler —
and records tail latency (p50/p95/p99), goodput, rejection accounting
and autoscaler activity to the *tracked* repo-root ``BENCH_serve.json``.
It also re-asserts the layer's headline invariant: per-job result
digests are identical across dispatch policies.

Every non-``_wall`` field is deterministic, so the committed file is a
regression gate: ``repro bench --check`` (or
``python benchmarks/check_bench.py``) re-measures and diffs.  A diff in
this file inside a PR is a deliberate statement that serving behavior
changed.
"""

from conftest import run_once

from repro.obs.bench import SERVE_POLICIES, measure_serve


def test_serving_slo_grid(benchmark, record_json):
    payload = run_once(benchmark, measure_serve)

    policies = payload["policies"]
    assert set(policies) == set(SERVE_POLICIES)
    for name, cells in policies.items():
        for label in ("fixed", "autoscale"):
            row = cells[label]
            assert row["completed"] > 0, f"{name}/{label} completed nothing"
            # Percentiles must be ordered and positive.
            assert (0 < row["latency_p50_s"] <= row["latency_p95_s"]
                    <= row["latency_p99_s"]), f"{name}/{label} percentiles"
            assert row["goodput_jps"] > 0
        # The elastic fleet starts smaller, so its tail can only be
        # worse-or-equal; it must actually have scaled at least once on
        # this workload or the autoscaler is inert.
        assert (cells["autoscale"]["latency_p99_s"]
                >= cells["fixed"]["latency_p99_s"] - 1e-9)
        assert cells["autoscale"]["scale_ups"] > 0, (
            f"{name}: the autoscaler never scaled up under load"
        )
        assert cells["fixed"]["scale_ups"] == 0

    # The headline invariant: what a job computes never depends on which
    # blade ran it, in what order, or under which dispatch policy.
    assert payload["digests_identical"], (
        "per-job digests diverged across dispatch policies"
    )

    record_json("BENCH_serve", payload, root=True)
