"""Table 2 — loop-level parallelism across 1-8 SPEs, one bootstrap.

Paper: best 18.10 s at 5 SPEs (1.58x over 28.71 s serial), efficiency
degrading beyond 5 SPEs because of worker start latency and the global
reduction serializing at the master.
"""

from conftest import run_once

from repro.analysis import PAPER_TABLE2, paper_comparison, table2_experiment


def test_table2(benchmark, record_table):
    result = run_once(
        benchmark, lambda: table2_experiment(tasks_per_bootstrap=400)
    )
    text = result.render()
    text += "\n\n" + paper_comparison(
        "LLP vs paper", result.xs, list(PAPER_TABLE2),
        result.series["llp"], label_name="SPEs/loop",
    )
    record_table("table2_llp_scaling", text)

    times = dict(zip(result.xs, result.series["llp"]))
    # Speedup from LLP exists and peaks at 4-5 SPEs.
    assert times[2] < times[1]
    best_k = min(times, key=times.get)
    assert best_k in (4, 5)
    # Paper's max speedup 1.58x; we accept 1.4-1.75.
    assert 1.4 < times[1] / times[best_k] < 1.75
    # Degradation past the sweet spot.
    assert times[8] > times[best_k]
