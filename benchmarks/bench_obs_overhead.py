"""Observability overhead — tracing off must be (nearly) free.

The span/metrics layer is threaded through every scheduler hot path
(off-load dispatch, granularity test, LLP split, MGPS window).  Its
contract is that the *disabled* path costs a single attribute check per
emit site and no allocation, so leaving the instrumentation compiled-in
does not tax normal experiment runs.

This benchmark times the same Figure-8-style MGPS run four ways —
observability off, tracer+metrics on, metrics only, and wall-clock
profiler on — takes the minimum of several repetitions each, and
records the summary to the *tracked* repo-root ``BENCH_obs.json``
baseline (raw per-repetition wall times go to gitignored
``benchmarks/out/BENCH_obs_raw.json``).  ``repro bench --check``
cross-checks the committed summary's deterministic fields against the
core ladder.  The acceptance bar is that the disabled path stays
within 2% of a fully stripped run; since the instrumentation cannot be
stripped at runtime, we assert the off path against the on path (off
must be meaningfully cheaper or equal) and record the absolute numbers
for cross-PR comparison.  The profiler leg additionally proves the
``profiler=None`` gate: attaching a :class:`repro.obs.Profiler` must
leave the schedule — makespan, off-load count and the per-bootstrap
digest map — bit-identical.

A fifth, *causal* leg runs with the tracer attached and then folds the
trace into off-load span trees plus an aggregate critical-path
breakdown (:mod:`repro.obs.causal` / :mod:`repro.obs.attribution`).
Collection is post-hoc, so the run's digests must stay bit-identical
to the off path; the fold's wall cost is recorded as
``causal_over_off_ratio_wall``.
"""

import time

from conftest import run_once

from repro.cell.params import BladeParams
from repro.core.runner import run_experiment
from repro.core.schedulers import mgps
from repro.obs import MetricsRegistry, Profiler, build_offload_trees, critical_path
from repro.sim.trace import Tracer
from repro.workloads.traces import Workload

BOOTSTRAPS = 3
TASKS = 200
REPS = 3


def _run(tracer=None, metrics=None, profiler=None):
    wl = Workload(bootstraps=BOOTSTRAPS, tasks_per_bootstrap=TASKS, seed=0)
    return run_experiment(
        mgps(), wl, blade=BladeParams(), seed=0,
        tracer=tracer, metrics=metrics, profiler=profiler,
    )


def _causal_run():
    """Traced run + full causal fold — the priced end-to-end pipeline."""
    tracer = Tracer(enabled=True)
    result = _run(tracer=tracer)
    roots = build_offload_trees(tracer)
    paths = [critical_path(r) for r in roots]
    return result, roots, paths


def _best_of(reps, fn):
    """Minimum wall time over ``reps`` runs (min filters scheduler noise)."""
    samples = []
    result = None
    for _ in range(reps):
        t0 = time.perf_counter()
        result = fn()
        samples.append(time.perf_counter() - t0)
    return min(samples), samples, result


def test_obs_overhead(benchmark, record_json):
    def measure():
        off_wall, off_raw, off = _best_of(REPS, lambda: _run())
        on_wall, on_raw, on = _best_of(
            REPS,
            lambda: _run(tracer=Tracer(enabled=True),
                         metrics=MetricsRegistry()),
        )
        metrics_wall, metrics_raw, _ = _best_of(
            REPS, lambda: _run(metrics=MetricsRegistry())
        )
        prof_wall, prof_raw, prof = _best_of(
            REPS, lambda: _run(profiler=Profiler())
        )
        causal_wall, causal_raw, causal = _best_of(REPS, _causal_run)
        raw = {
            "off": off_raw,
            "on": on_raw,
            "metrics_only": metrics_raw,
            "profiler": prof_raw,
            "causal": causal_raw,
        }
        return (off_wall, on_wall, metrics_wall, prof_wall, causal_wall,
                off, on, prof, causal, raw)

    (off_wall, on_wall, metrics_wall, prof_wall, causal_wall,
     off, on, prof, causal, raw) = run_once(benchmark, measure)

    # Observability must not perturb the simulation...
    assert off.makespan == on.makespan
    assert off.offloads == on.offloads
    assert off.llp_invocations == on.llp_invocations
    # ...and the disabled path must not cost more than the enabled one
    # (2% slack for timer noise on an already-fast run).
    assert off_wall <= on_wall * 1.02

    # The profiler gate: timing the hot path must not change the
    # schedule.  Digest maps are bit-identical, and the profiler-off run
    # stays within 2% of the profiler-on run (off can never be slower).
    assert off.makespan == prof.makespan
    assert off.offloads == prof.offloads
    assert off.result_digest == prof.result_digest
    assert off.bootstrap_digests == prof.bootstrap_digests
    assert off.events_processed == prof.events_processed
    assert off_wall <= prof_wall * 1.02

    # The causal fold is post-hoc: tracing + tree assembly must leave
    # every deterministic outcome bit-identical to the stripped run,
    # and the trees must cover every recorded off-load.
    causal_result, causal_roots, causal_paths = causal
    assert off.makespan == causal_result.makespan
    assert off.offloads == causal_result.offloads
    assert off.result_digest == causal_result.result_digest
    assert off.bootstrap_digests == causal_result.bootstrap_digests
    assert off.events_processed == causal_result.events_processed
    assert len(causal_roots) == off.offloads
    assert all(len(p) >= 2 for p in causal_paths)

    # Summary -> the tracked repo-root baseline; raw samples -> out/.
    record_json(
        "BENCH_obs",
        {
            "workload": {
                "scheduler": "mgps",
                "bootstraps": BOOTSTRAPS,
                "tasks_per_bootstrap": TASKS,
                "reps": REPS,
            },
            "makespan_s": off.makespan,
            "offloads": off.offloads,
            "off_seconds_wall": off_wall,
            "on_seconds_wall": on_wall,
            "metrics_only_seconds_wall": metrics_wall,
            "profiler_seconds_wall": prof_wall,
            "causal_seconds_wall": causal_wall,
            "on_over_off_ratio_wall": on_wall / off_wall,
            "metrics_over_off_ratio_wall": metrics_wall / off_wall,
            "profiler_over_off_ratio_wall": prof_wall / off_wall,
            "causal_over_off_ratio_wall": causal_wall / off_wall,
        },
        root=True,
    )
    record_json(
        "BENCH_obs_raw",
        {f"{k}_samples_wall": v for k, v in raw.items()},
    )
