"""Figure 7 — static EDTLP-LLP hybrids vs plain EDTLP.

Paper shapes: the hybrid wins up to 4 bootstraps (only it can use more
than 4 SPEs), EDTLP wins at 5-8 and from 13 on, and the benefit of LLP
shrinks as task-level parallelism grows.  Panels (a) 1-16 and (b) 1-128.
"""

from conftest import run_once

from repro.analysis import SWEEP_LARGE, SWEEP_SMALL, figure_sweep
from repro.core.schedulers import edtlp, static_hybrid

SCHEDULERS = {
    "EDTLP-LLP2": static_hybrid(2),
    "EDTLP-LLP4": static_hybrid(4),
    "EDTLP": edtlp(),
}


def test_fig7a_small_counts(benchmark, record_table):
    result = run_once(
        benchmark,
        lambda: figure_sweep(
            SWEEP_SMALL, schedulers=dict(SCHEDULERS),
            tasks_per_bootstrap=300,
            name="Figure 7a: 1-16 bootstraps, one Cell (seconds)",
        ),
    )
    record_table("fig7a_static_hybrid", result.render())

    xs = result.xs
    llp2 = dict(zip(xs, result.series["EDTLP-LLP2"]))
    llp4 = dict(zip(xs, result.series["EDTLP-LLP4"]))
    ed = dict(zip(xs, result.series["EDTLP"]))
    # Hybrid wins at <= 4 bootstraps.
    for b in (1, 2, 4):
        assert min(llp2[b], llp4[b]) < ed[b]
    # EDTLP wins at 8 and at >= 14.
    assert ed[8] < llp2[8]
    for b in (14, 16):
        assert ed[b] < min(llp2[b], llp4[b])


def test_fig7b_large_counts(benchmark, record_table):
    result = run_once(
        benchmark,
        lambda: figure_sweep(
            SWEEP_LARGE, schedulers=dict(SCHEDULERS),
            tasks_per_bootstrap=150,
            name="Figure 7b: 1-128 bootstraps, one Cell (seconds)",
        ),
    )
    record_table("fig7b_static_hybrid", result.render())

    xs = result.xs
    llp2 = dict(zip(xs, result.series["EDTLP-LLP2"]))
    ed = dict(zip(xs, result.series["EDTLP"]))
    # The occasional LLP benefit vanishes at scale: EDTLP increasingly
    # faster as bootstraps grow.
    for b in (32, 64, 96, 128):
        assert ed[b] < llp2[b]
    assert llp2[128] / ed[128] > llp2[16] / ed[16] * 0.95
