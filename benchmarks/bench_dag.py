"""The tracked workflow-DAG grid — pipelines, bootstop, stage cache.

Runs the raxml-style workflow (check -> infer -> bootstrap fan-out ->
consensus) through four cells — cache-cold, cache-warm (repeat
submission), bootstop-on converging, and the diverging control — and
records the grid to the *tracked* repo-root ``BENCH_dag.json``.  It
also re-asserts the layer's acceptance invariants: the repeat
submission hits the stage cache on 100% of stages and lands on a
digest-identical final result; autoMRE bootstopping cancels at least
30% of the converging fan-out; job conservation (admitted = completed
+ cancelled + aborted + lost) is exact with zero losses everywhere.

Every non-``_wall`` field is deterministic, so the committed file is a
regression gate: ``repro bench --check`` (or
``python benchmarks/check_bench.py``) re-measures and diffs.  A diff in
this file inside a PR is a deliberate statement that workflow behavior
changed.
"""

from conftest import run_once

from repro.obs.bench import measure_dag


def test_workflow_dag_grid(benchmark, record_json):
    payload = run_once(benchmark, measure_dag)

    grid = payload["grid"]
    assert set(grid) == {"cache-cold", "cache-warm", "bootstop",
                         "bootstop-diverging"}
    for name, row in grid.items():
        assert row["conservation_ok"], f"{name} broke job conservation"
        assert row["lost"] == 0, f"{name} lost jobs"

    # Cache: the repeat submission short-circuits every stage and the
    # result is bit-identical to the cold run's.
    assert payload["warm_hit_rate"] == 1.0
    assert payload["warm_digest_identical"]
    assert grid["cache-warm"]["warm_makespan"] < grid["cache-cold"]["makespan"]

    # Bootstop: the converging fan-out stops early (>= 30% cancelled,
    # the acceptance floor) and faster than the full run; the diverging
    # control needs more replicates before it converges.
    assert payload["bootstop_savings"] >= 0.30
    assert grid["bootstop"]["makespan"] < grid["cache-cold"]["makespan"]
    assert (grid["bootstop-diverging"]["bootstop_cancelled"]
            < grid["bootstop"]["bootstop_cancelled"])

    record_json("BENCH_dag", payload, root=True)
