"""Figure 8 — MGPS against the static schemes.

Paper shapes: MGPS tracks the lower envelope of EDTLP and EDTLP-LLP
without oracle knowledge, shows benefits up to ~28 bootstraps (the
draining tail exposes low task parallelism), and converges to EDTLP
beyond (the curves overlap completely in panel b).
"""

from conftest import run_once

from repro.analysis import SWEEP_LARGE, SWEEP_SMALL, figure_sweep


def test_fig8a_small_counts(benchmark, record_table):
    result = run_once(
        benchmark,
        lambda: figure_sweep(
            SWEEP_SMALL, tasks_per_bootstrap=300,
            name="Figure 8a: MGPS vs static schemes, 1-16 bootstraps (s)",
        ),
    )
    record_table("fig8a_mgps", result.render())

    xs = result.xs
    for i, b in enumerate(xs):
        best_static = min(
            result.series["EDTLP"][i],
            result.series["EDTLP-LLP2"][i],
            result.series["EDTLP-LLP4"][i],
        )
        assert result.series["MGPS"][i] <= 1.10 * best_static
    # Clear win over plain EDTLP at low TLP.
    assert result.series["MGPS"][0] < 0.75 * result.series["EDTLP"][0]


def test_fig8b_large_counts(benchmark, record_table):
    result = run_once(
        benchmark,
        lambda: figure_sweep(
            SWEEP_LARGE, tasks_per_bootstrap=150,
            name="Figure 8b: MGPS vs static schemes, 1-128 bootstraps (s)",
        ),
    )
    record_table("fig8b_mgps", result.render())

    xs = result.xs
    mg = dict(zip(xs, result.series["MGPS"]))
    ed = dict(zip(xs, result.series["EDTLP"]))
    # "The curves of MGPS and EDTLP overlap completely in (b)."
    for b in (32, 64, 96, 128):
        assert abs(mg[b] / ed[b] - 1) < 0.05
    # MGPS better than both static hybrids at scale.
    for b in (64, 128):
        assert mg[b] < dict(zip(xs, result.series["EDTLP-LLP2"]))[b]
        assert mg[b] < dict(zip(xs, result.series["EDTLP-LLP4"]))[b]
