"""Shared benchmark plumbing.

Every benchmark regenerates one of the paper's tables/figures, times the
harness with pytest-benchmark (``rounds=1`` — these are simulations, not
microbenchmarks), writes its artifact to ``benchmarks/out/`` and echoes
it to the terminal report.

Artifacts are deterministic by construction: tables come from seeded
simulations, and JSON artifacts go through :func:`record_json`, which
sorts keys and rounds floats (via :func:`repro.obs.metrics.stable_round`)
so re-runs produce byte-identical files — except explicitly wall-clock
fields, which callers mark with a ``_wall`` suffix.
"""

import json
import pathlib

import pytest

from repro.obs.metrics import stable_round

OUT_DIR = pathlib.Path(__file__).parent / "out"

_collected = []


def _stable(obj):
    """Recursively round floats for diff-stable JSON artifacts."""
    if isinstance(obj, float):
        return stable_round(obj)
    if isinstance(obj, dict):
        return {k: _stable(v) for k, v in sorted(obj.items())}
    if isinstance(obj, (list, tuple)):
        return [_stable(v) for v in obj]
    return obj


@pytest.fixture
def record_table():
    """Persist and display a rendered experiment table."""

    def _record(name: str, text: str) -> None:
        OUT_DIR.mkdir(exist_ok=True)
        (OUT_DIR / f"{name}.txt").write_text(text + "\n")
        _collected.append((name, text))

    return _record


@pytest.fixture
def record_json():
    """Persist a JSON artifact under ``benchmarks/out/`` deterministically.

    Keys are emitted sorted and floats rounded; keys ending in ``_wall``
    are passed through untouched (wall-clock timings are expected to
    vary between runs).
    """

    def _record(name: str, payload: dict) -> pathlib.Path:
        OUT_DIR.mkdir(exist_ok=True)
        stable = {
            k: (v if k.endswith("_wall") else _stable(v))
            for k, v in sorted(payload.items())
        }
        path = OUT_DIR / f"{name}.json"
        path.write_text(
            json.dumps(stable, indent=2, sort_keys=True) + "\n"
        )
        _collected.append((name, json.dumps(stable, sort_keys=True)))
        return path

    return _record


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _collected:
        return
    terminalreporter.section("reproduced tables and figures")
    for name, text in _collected:
        terminalreporter.write_line("")
        terminalreporter.write_line(text)


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
