"""Shared benchmark plumbing.

Every benchmark regenerates one of the paper's tables/figures, times the
harness with pytest-benchmark (``rounds=1`` — these are simulations, not
microbenchmarks), writes the rendered table to ``benchmarks/out/`` and
echoes it to the terminal report.
"""

import pathlib

import pytest

OUT_DIR = pathlib.Path(__file__).parent / "out"

_collected = []


@pytest.fixture
def record_table():
    """Persist and display a rendered experiment table."""

    def _record(name: str, text: str) -> None:
        OUT_DIR.mkdir(exist_ok=True)
        (OUT_DIR / f"{name}.txt").write_text(text + "\n")
        _collected.append((name, text))

    return _record


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _collected:
        return
    terminalreporter.section("reproduced tables and figures")
    for name, text in _collected:
        terminalreporter.write_line("")
        terminalreporter.write_line(text)


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
