"""Shared benchmark plumbing.

Every benchmark regenerates one of the paper's tables/figures, times the
harness with pytest-benchmark (``rounds=1`` — these are simulations, not
microbenchmarks), writes its artifact to ``benchmarks/out/`` (or, for
the tracked ``BENCH_*.json`` baselines, the repo root) and echoes it to
the terminal report.

Artifacts are deterministic by construction: tables come from seeded
simulations, and JSON artifacts go through :func:`record_json`, which
sorts keys and rounds floats (via
:func:`repro.obs.bench.stable_payload`) so re-runs produce
byte-identical files — except explicitly wall-clock fields, which
callers mark with a ``_wall`` suffix and which the regression gate
(``repro bench --check``) never compares.
"""

import json
import pathlib

import pytest

from repro.obs.bench import stable_payload

OUT_DIR = pathlib.Path(__file__).parent / "out"
REPO_ROOT = pathlib.Path(__file__).parent.parent

_collected = []


@pytest.fixture
def record_table():
    """Persist and display a rendered experiment table."""

    def _record(name: str, text: str) -> None:
        OUT_DIR.mkdir(exist_ok=True)
        (OUT_DIR / f"{name}.txt").write_text(text + "\n")
        _collected.append((name, text))

    return _record


@pytest.fixture
def record_json():
    """Persist a JSON benchmark artifact deterministically.

    Keys are emitted sorted and floats rounded (at any nesting depth);
    keys ending in ``_wall`` are passed through untouched (wall-clock
    timings are expected to vary between runs).  By default artifacts
    land in gitignored ``benchmarks/out/``; ``root=True`` writes to the
    repo root instead — that is how the *tracked* ``BENCH_*.json``
    baseline trajectory is refreshed (commit the diff deliberately).
    """

    def _record(name: str, payload: dict, root: bool = False) -> pathlib.Path:
        stable = stable_payload(payload)
        if root:
            path = REPO_ROOT / f"{name}.json"
        else:
            OUT_DIR.mkdir(exist_ok=True)
            path = OUT_DIR / f"{name}.json"
        path.write_text(
            json.dumps(stable, indent=2, sort_keys=True) + "\n"
        )
        _collected.append((name, json.dumps(stable, sort_keys=True)))
        return path

    return _record


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _collected:
        return
    terminalreporter.section("reproduced tables and figures")
    for name, text in _collected:
        terminalreporter.write_line("")
        terminalreporter.write_line(text)


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
