"""Event-kernel microbenchmark — the sim loop with nothing on top.

The tracked throughput grid (``BENCH_perf.json``) times whole scenarios
— scheduler, runtime, serving layers included — so a kernel regression
can hide behind an application-layer win.  This benchmark exercises the
:mod:`repro.sim` hot path *standalone* with three synthetic patterns:

* ``timeout_churn`` — many processes sleeping pseudo-random delays:
  the calendar queue's steady state (near buckets + far heap refills);
* ``same_timestamp`` — wide same-instant fan-out through shared
  events: the immediate/deferred O(1) lanes and batch advance;
* ``wake_chain`` — two processes ping-ponging through fresh events:
  the single-waiter fast path and the Timeout pool.

Every pattern's event count is deterministic (seeded LCG, no wall
input); the events-per-wall-second rates carry the ``_wall`` suffix so
the artifact (``benchmarks/out/bench_kernel.json``) stays byte-stable
across machines.  The churn pattern also records
:meth:`Environment.kernel_stats` — the same gauges the runner publishes
as ``run.kernel.*``.

Runs under pytest like the other benchmarks, or standalone::

    PYTHONPATH=src python benchmarks/bench_kernel.py
"""

import time

from repro.sim import Environment

REPS = 3


def _lcg(seed):
    """Deterministic delay stream; no ``random`` import on the hot path."""
    state = seed & 0xFFFFFFFF
    while True:
        state = (1103515245 * state + 12345) & 0x7FFFFFFF
        yield (state % 1000) / 100.0


def timeout_churn(n_procs=100, n_sleeps=200, seed=7):
    """Calendar steady state: ``n_procs`` sleepers, mixed delays."""
    env = Environment()

    def sleeper(rank):
        delays = _lcg(seed + rank)
        for _ in range(n_sleeps):
            yield env.timeout(next(delays))

    procs = [env.process(sleeper(i)) for i in range(n_procs)]
    env.run_until_complete(env.all_of(procs))
    return env


def same_timestamp(n_waiters=500, n_rounds=40):
    """Same-instant fan-out: one trigger wakes ``n_waiters`` per round."""
    env = Environment()

    def waiter(gates):
        for gate in gates:
            yield gate

    def ticker(gates):
        for gate in gates:
            yield env.timeout(1.0)
            gate.succeed()

    gates = [env.event() for _ in range(n_rounds)]
    procs = [env.process(waiter(gates)) for _ in range(n_waiters)]
    procs.append(env.process(ticker(gates)))
    env.run_until_complete(env.all_of(procs))
    return env


def wake_chain(n_rounds=20000):
    """Two-process ping-pong: single-waiter events, pooled timeouts."""
    env = Environment()
    box = {"ping": env.event(), "pong": env.event()}

    def left():
        for _ in range(n_rounds):
            yield env.timeout(0.5)
            box["ping"].succeed()
            box["pong"] = env.event()
            yield box["pong"]

    def right():
        for _ in range(n_rounds):
            yield box["ping"]
            box["ping"] = env.event()
            box["pong"].succeed()

    procs = [env.process(left()), env.process(right())]
    env.run_until_complete(env.all_of(procs))
    return env


PATTERNS = (
    ("timeout_churn", timeout_churn),
    ("same_timestamp", same_timestamp),
    ("wake_chain", wake_chain),
)


def measure_kernel(reps=REPS, time_source=time.perf_counter):
    """Best-of-``reps`` wall time per pattern; the artifact payload."""
    scenarios = {}
    kernel = None
    for name, pattern in PATTERNS:
        best, env = float("inf"), None
        for _ in range(max(1, reps)):
            t0 = time_source()
            env = pattern()
            best = min(best, time_source() - t0)
        scenarios[name] = {
            "events": env.events_processed,
            "events_per_sec_wall": (
                env.events_processed / best if best > 0 else 0.0
            ),
            "seconds_wall": best,
        }
        if name == "timeout_churn":
            kernel = env.kernel_stats()
    return {"reps": reps, "scenarios": scenarios, "kernel": kernel}


def test_kernel_hot_path(benchmark, record_json):
    from conftest import run_once

    payload = run_once(benchmark, measure_kernel)
    for name, row in payload["scenarios"].items():
        assert row["events"] > 0, name
        assert row["events_per_sec_wall"] > 0.0, name
    # The pool and the O(1) lanes must actually be exercised — a silent
    # fall-back to heap-everything would pass a pure throughput check.
    assert payload["kernel"]["pool_hit_rate"] > 0.5
    assert payload["kernel"]["heap_events"] > 0
    record_json("bench_kernel", payload)


if __name__ == "__main__":
    import json

    from repro.obs.bench import stable_payload

    print(json.dumps(stable_payload(measure_kernel()), indent=2,
                     sort_keys=True))
