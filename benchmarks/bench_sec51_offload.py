"""Section 5.1 — SPE off-loading and optimization.

Regenerates the three anchor timings: 38.23 s PPE-only, 50.38 s naive
off-load, 28.82 s optimized (one bootstrap, 42_SC).
"""

from conftest import run_once

from repro.analysis import PAPER_SEC51, sec51_offload_experiment


def test_sec51_offload(benchmark, record_table):
    result = run_once(
        benchmark, lambda: sec51_offload_experiment(tasks_per_bootstrap=500)
    )
    record_table("sec51_offload", result.render())

    measured = dict(zip(result.xs, result.series["measured"]))
    assert measured["naive-offload"] > measured["ppe-only"]
    assert measured["optimized-offload"] < measured["ppe-only"]
    # The 1.32x optimized-SPE speedup over the PPE.
    assert 1.25 < measured["ppe-only"] / measured["optimized-offload"] < 1.40
    for key, paper_key in (
        ("ppe-only", "ppe_only"),
        ("naive-offload", "naive_offload"),
        ("optimized-offload", "optimized_offload"),
    ):
        assert abs(measured[key] / PAPER_SEC51[paper_key] - 1) < 0.06
