"""Kernel throughput — the wall-clock floor the perf gate enforces.

The other benchmarks track *simulated* outcomes (makespans, SLO grids);
this one tracks how fast the simulator itself turns the crank: events
per wall-second for the Figure-8 MGPS run and events- and
jobs-per-wall-second for the serving scenario.  The grid comes from
:func:`repro.obs.bench.measure_throughput` (best-of-N wall time per
scenario) and is recorded to the *tracked* repo-root
``BENCH_perf.json``.

Unlike the other baselines, the wall-rate fields here are not merely
informational: ``repro bench --check`` (and ``check_bench.py``)
re-measures the grid and enforces each committed ``*_per_sec_wall``
value as a one-sided floor — the current rate may be faster without
limit, but a slow-down beyond the regression tolerance (default 30%,
see :data:`repro.obs.bench.PERF_REGRESSION_TOLERANCE`) fails the gate.
Deterministic fields (event and job counts) are compared exactly, like
any other baseline.  Refresh — and thereby *ratchet* — the floors with
``repro bench --write`` on a quiet machine and commit the diff.
"""

from conftest import run_once

from repro.obs.bench import measure_throughput


def test_throughput_grid(benchmark, record_json):
    grid = run_once(benchmark, measure_throughput)

    scenarios = grid["scenarios"]
    # Both scenarios must actually have turned the crank...
    assert scenarios["fig8"]["events"] > 0
    assert scenarios["serve"]["events"] > 0
    assert scenarios["serve"]["jobs"] > 0
    # ...and produced finite, positive wall rates.
    for scen in scenarios.values():
        for key, value in scen.items():
            if key.endswith("_per_sec_wall"):
                assert value > 0.0

    record_json("BENCH_perf", grid, root=True)
