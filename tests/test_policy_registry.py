"""The scheduling-policy registry: registration, lookup, end-to-end use."""

import pytest

from repro.core.runner import run_experiment
from repro.core.runtime import (
    SchedulingPolicy,
    available_policies,
    register_policy,
    resolve_policy,
)
from repro.core.runtime.policy import _REGISTRY
from repro.core.schedulers import SchedulerSpec, edtlp
from repro.workloads import Workload


@pytest.fixture
def scratch_registry():
    """Let a test register throwaway policies without polluting others."""
    before = set(_REGISTRY)
    yield
    for name in set(_REGISTRY) - before:
        del _REGISTRY[name]


class TestRegistry:
    def test_builtins_registered(self):
        names = [info.name for info in available_policies()]
        assert names == sorted(names)
        assert {"linux", "edtlp", "static_hybrid", "mgps"} <= set(names)

    def test_duplicate_name_rejected(self, scratch_registry):
        register_policy("dup-policy", lambda spec: SchedulingPolicy())
        with pytest.raises(ValueError, match=r"already registered"):
            register_policy("dup-policy", lambda spec: SchedulingPolicy())

    def test_duplicate_name_allowed_with_replace(self, scratch_registry):
        first = register_policy("dup-policy", lambda spec: SchedulingPolicy())
        second = register_policy(
            "dup-policy", lambda spec: SchedulingPolicy(), replace=True
        )
        assert resolve_policy("dup-policy").factory is second
        assert resolve_policy("dup-policy").factory is not first

    def test_unknown_name_lists_known_policies(self):
        with pytest.raises(ValueError) as err:
            resolve_policy("no-such-policy")
        message = str(err.value)
        assert "no-such-policy" in message
        assert "known policies" in message
        for name in ("edtlp", "linux", "mgps", "static_hybrid"):
            assert name in message

    def test_spec_kind_goes_through_registry(self):
        with pytest.raises(ValueError, match=r"known policies"):
            SchedulerSpec(kind="bogus")

    def test_knobs_recorded(self):
        assert "llp_degree" in resolve_policy("static_hybrid").knobs
        assert "history_window" in resolve_policy("mgps").knobs


class TestCustomPolicyEndToEnd:
    def test_registered_policy_runs_via_spec(self, scratch_registry):
        class FixedDegree(SchedulingPolicy):
            name = "fixed3"

            def llp_degree(self, ctx):
                return 3

        register_policy("fixed3", lambda spec: FixedDegree())
        wl = Workload(bootstraps=4, tasks_per_bootstrap=120, seed=0)
        result = run_experiment(SchedulerSpec(kind="fixed3"), wl)
        assert result.offloads > 0
        assert result.llp_invocations > 0  # degree 3 forces loop splits
        assert result.scheduler == "fixed3"

    def test_factory_reads_spec_knobs(self, scratch_registry):
        seen = {}

        class Probe(SchedulingPolicy):
            name = "probe"

        def factory(spec):
            seen["llp_degree"] = spec.llp_degree
            return Probe()

        register_policy("probe", factory)
        wl = Workload(bootstraps=2, tasks_per_bootstrap=40, seed=0)
        run_experiment(SchedulerSpec(kind="probe", llp_degree=5), wl)
        assert seen["llp_degree"] == 5

    def test_admit_veto_forces_ppe_fallback(self, scratch_registry):
        class NoOffload(SchedulingPolicy):
            name = "no-offload"

            def admit(self, ctx, task, decision):
                return False

        register_policy("no-offload", lambda spec: NoOffload())
        wl = Workload(bootstraps=2, tasks_per_bootstrap=60, seed=0)
        vetoed = run_experiment(SchedulerSpec(kind="no-offload"), wl)
        free = run_experiment(edtlp(), wl)
        assert vetoed.offloads == 0
        assert vetoed.ppe_fallbacks > 0
        # Results are computed either way; only placement changes.
        assert vetoed.result_digest == free.result_digest
