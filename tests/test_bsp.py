"""Tests for the bulk-synchronous hybrid MPI workload and its runner."""

import pytest

from repro.core import run_bsp_experiment
from repro.core.schedulers import edtlp, linux, mgps, static_hybrid
from repro.sim import Barrier, Environment
from repro.workloads import BSPWorkload


class TestBarrier:
    def test_releases_when_full(self):
        env = Environment()
        b = Barrier(env, 3)
        times = []

        def party(delay):
            yield env.timeout(delay)
            gen = yield b.arrive()
            times.append((env.now, gen))

        for d in (1.0, 2.0, 3.0):
            env.process(party(d))
        env.run()
        assert [t for t, _ in times] == [3.0, 3.0, 3.0]
        assert all(g == 1 for _, g in times)

    def test_reusable_generations(self):
        env = Environment()
        b = Barrier(env, 2)
        log = []

        def party(name):
            for _ in range(3):
                yield env.timeout(1.0)
                gen = yield b.arrive()
                log.append((name, gen))

        env.process(party("a"))
        env.process(party("b"))
        env.run()
        assert b.generations == 3
        assert sorted(log) == [("a", 1), ("a", 2), ("a", 3),
                               ("b", 1), ("b", 2), ("b", 3)]

    def test_validation(self):
        with pytest.raises(ValueError):
            Barrier(Environment(), 0)


class TestBSPWorkload:
    def test_phase_items_deterministic(self):
        wl = BSPWorkload(n_processes=4, iterations=2, seed=1)
        assert wl.phase_items(0, 0) is wl.phase_items(0, 0)
        wl2 = BSPWorkload(n_processes=4, iterations=2, seed=1)
        assert [i.task.spe_time for i in wl.phase_items(1, 1)] == [
            i.task.spe_time for i in wl2.phase_items(1, 1)
        ]

    def test_straggler_weighting(self):
        wl = BSPWorkload(n_processes=4, iterations=1,
                         tasks_per_iteration=40, imbalance=2.0)
        n0 = len(wl.phase_items(0, 0))
        n1 = len(wl.phase_items(1, 0))
        assert n0 == pytest.approx(3 * n1, rel=0.1)

    def test_bounds_checked(self):
        wl = BSPWorkload(n_processes=2, iterations=2)
        with pytest.raises(IndexError):
            wl.phase_items(2, 0)
        with pytest.raises(IndexError):
            wl.phase_items(0, 2)

    def test_validation(self):
        with pytest.raises(ValueError):
            BSPWorkload(n_processes=0)
        with pytest.raises(ValueError):
            BSPWorkload(imbalance=-1.0)
        with pytest.raises(ValueError):
            BSPWorkload(tasks_per_iteration=0)


class TestBSPExperiments:
    def _wl(self, imbalance=0.0):
        return BSPWorkload(
            n_processes=8, iterations=4, tasks_per_iteration=30,
            imbalance=imbalance, seed=3,
        )

    def test_all_tasks_execute(self):
        wl = self._wl()
        r = run_bsp_experiment(edtlp(), wl)
        assert r.offloads + r.ppe_fallbacks == wl.total_tasks()
        assert r.extras["barrier_generations"] == 4

    def test_edtlp_beats_linux(self):
        wl = self._wl()
        e = run_bsp_experiment(edtlp(), wl)
        l = run_bsp_experiment(linux(), wl)
        assert e.makespan < 0.6 * l.makespan

    def test_mgps_accelerates_stragglers(self):
        """The generalization claim: on an imbalanced BSP workload MGPS
        work-shares the straggler's loops during each phase tail."""
        wl = self._wl(imbalance=3.0)
        e = run_bsp_experiment(edtlp(), wl)
        m = run_bsp_experiment(mgps(), wl)
        assert m.llp_invocations > 0
        assert m.makespan < 0.90 * e.makespan

    def test_mgps_neutral_when_balanced(self):
        wl = self._wl(imbalance=0.0)
        e = run_bsp_experiment(edtlp(), wl)
        m = run_bsp_experiment(mgps(), wl)
        assert m.makespan <= 1.05 * e.makespan

    def test_static_hybrid_degenerates_when_no_spes_idle(self):
        # 8 busy ranks occupy all 8 SPEs as masters; the hybrid finds no
        # idle workers and degenerates to EDTLP behaviour (within a few
        # percent; it still pays the LLP code-image load).
        wl = self._wl(imbalance=0.0)
        e = run_bsp_experiment(edtlp(), wl)
        h = run_bsp_experiment(static_hybrid(2), wl)
        assert h.makespan == pytest.approx(e.makespan, rel=0.05)
        # Transient jitter frees the odd SPE, so some loop invocations
        # still happen -- but most off-loads run serial for lack of
        # workers.
        assert h.llp_invocations < 0.5 * h.offloads

    def test_deterministic(self):
        wl = self._wl(imbalance=1.0)
        a = run_bsp_experiment(mgps(), wl)
        b = run_bsp_experiment(mgps(), wl)
        assert a.makespan == b.makespan

    def test_linux_process_cap(self):
        wl = BSPWorkload(n_processes=9, iterations=1)
        with pytest.raises(ValueError):
            run_bsp_experiment(linux(), wl)
