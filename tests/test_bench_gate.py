"""Tests for the tracked benchmark trajectory and its regression gate.

Tier-1 guarantees: the committed repo-root ``BENCH_*.json`` baselines
parse and carry the keys the gate needs; :func:`repro.obs.bench.compare`
applies per-metric tolerances and ignores wall-clock fields; and a fresh
measurement of the scheduler ladder still matches the committed
baseline (the actual regression gate, run end to end).
"""

import json
import pathlib

import pytest

from repro.cli import main
from repro.obs.bench import (
    CORE_BASELINE,
    OBS_BASELINE,
    REQUIRED_CORE_KEYS,
    REQUIRED_OBS_KEYS,
    check_baselines,
    compare,
    find_repo_root,
    flatten,
    measure_core,
    stable_payload,
)

REPO_ROOT = pathlib.Path(__file__).parent.parent


# -- committed baselines ------------------------------------------------------

class TestCommittedBaselines:
    @pytest.mark.parametrize("name,required", [
        (CORE_BASELINE, REQUIRED_CORE_KEYS),
        (OBS_BASELINE, REQUIRED_OBS_KEYS),
    ])
    def test_baseline_parses_with_required_keys(self, name, required):
        path = REPO_ROOT / name
        assert path.exists(), (
            f"{name} must be committed at the repo root; regenerate with "
            f"the benchmarks suite or 'repro bench --write'"
        )
        payload = json.loads(path.read_text())
        for key in required:
            assert key in payload, f"{name} lost required key {key!r}"

    def test_core_baseline_covers_the_ladder(self):
        payload = json.loads((REPO_ROOT / CORE_BASELINE).read_text())
        assert set(payload["schedulers"]) == {
            "serial", "edtlp", "edtlp-llp4", "mgps",
        }
        for row in payload["schedulers"].values():
            assert {"makespan_s", "offloads", "llp_invocations"} <= set(row)

    def test_find_repo_root_locates_baselines(self):
        root = find_repo_root(pathlib.Path(__file__))
        assert (root / CORE_BASELINE).exists()


# -- compare() semantics ------------------------------------------------------

class TestCompare:
    BASE = {"a": {"makespan_s": 10.0, "offloads": 600,
                  "seconds_wall": 1.0}, "tag": "x"}

    def test_identical_payloads_pass(self):
        assert compare(self.BASE, self.BASE) == []

    def test_wall_fields_never_compared(self):
        current = {"a": {"makespan_s": 10.0, "offloads": 600,
                         "seconds_wall": 99.0}, "tag": "x"}
        assert compare(current, self.BASE) == []

    def test_drift_beyond_tolerance_flagged(self):
        current = {"a": {"makespan_s": 10.2, "offloads": 600,
                         "seconds_wall": 1.0}, "tag": "x"}
        violations = compare(current, self.BASE)
        assert [v["path"] for v in violations] == ["a.makespan_s"]
        assert violations[0]["kind"] == "drift"

    def test_tolerance_allows_slack(self):
        current = {"a": {"makespan_s": 10.2, "offloads": 600,
                         "seconds_wall": 1.0}, "tag": "x"}
        assert compare(current, self.BASE,
                       tolerances={"makespan_s": 0.05}) == []

    def test_count_metrics_compare_exactly(self):
        current = {"a": {"makespan_s": 10.0, "offloads": 601,
                         "seconds_wall": 1.0}, "tag": "x"}
        violations = compare(current, self.BASE)
        assert [v["path"] for v in violations] == ["a.offloads"]

    def test_missing_and_new_leaves_flagged(self):
        current = {"a": {"makespan_s": 10.0, "extra": 1.0,
                         "seconds_wall": 1.0}, "tag": "x"}
        kinds = {v["path"]: v["kind"] for v in compare(current, self.BASE)}
        assert kinds == {"a.offloads": "missing", "a.extra": "new"}

    def test_non_numeric_leaves_compare_exactly(self):
        current = dict(self.BASE, tag="y")
        violations = compare(current, self.BASE)
        assert [v["path"] for v in violations] == ["tag"]
        assert violations[0]["kind"] == "changed"

    def test_flatten_paths(self):
        flat = flatten({"a": {"b": [1, {"c": 2}]}, "d": 3})
        assert flat == {"a.b.0": 1, "a.b.1.c": 2, "d": 3}

    def test_stable_payload_rounds_but_passes_wall_through(self):
        raw = {"x": 0.123456789123456789, "t_wall": 0.123456789123456789}
        out = stable_payload(raw)
        assert out["x"] != raw["x"]  # rounded
        assert out["t_wall"] == raw["t_wall"]  # verbatim


# -- the gate, end to end -----------------------------------------------------

class TestRegressionGate:
    @pytest.fixture(scope="class")
    def current(self):
        return measure_core()

    def test_fresh_measurement_matches_committed_baseline(self, current):
        baseline = json.loads((REPO_ROOT / CORE_BASELINE).read_text())
        violations = compare(current, baseline)
        assert violations == [], (
            "scheduler behavior drifted from the committed BENCH_core.json "
            "baseline; if intended, refresh it with 'repro bench --write' "
            f"and commit the diff: {violations}"
        )

    def test_check_baselines_passes(self, current):
        ok, report = check_baselines(root=REPO_ROOT, current_core=current)
        assert ok, report
        assert "bench: OK" in report

    def test_cli_bench_check_exits_zero(self, capsys):
        assert main(["bench", "--check"]) == 0
        out = capsys.readouterr().out
        assert "bench: OK" in out
