"""Tests for the tracked benchmark trajectory and its regression gate.

Tier-1 guarantees: the committed repo-root ``BENCH_*.json`` baselines
parse and carry the keys the gate needs; :func:`repro.obs.bench.compare`
applies per-metric tolerances and ignores wall-clock fields; and a fresh
measurement of the scheduler ladder still matches the committed
baseline (the actual regression gate, run end to end).
"""

import json
import pathlib

import pytest

from repro.cli import main
from repro.obs.bench import (
    CORE_BASELINE,
    OBS_BASELINE,
    PERF_BASELINE,
    PERF_REGRESSION_TOLERANCE,
    PERF_TOLERANCE_ENV,
    REQUIRED_CORE_KEYS,
    REQUIRED_OBS_KEYS,
    REQUIRED_PERF_KEYS,
    check_baselines,
    check_perf_floors,
    compare,
    find_repo_root,
    flatten,
    is_wall_field,
    measure_core,
    perf_tolerance,
    stable_payload,
)

REPO_ROOT = pathlib.Path(__file__).parent.parent


# -- committed baselines ------------------------------------------------------

class TestCommittedBaselines:
    @pytest.mark.parametrize("name,required", [
        (CORE_BASELINE, REQUIRED_CORE_KEYS),
        (OBS_BASELINE, REQUIRED_OBS_KEYS),
        (PERF_BASELINE, REQUIRED_PERF_KEYS),
    ])
    def test_baseline_parses_with_required_keys(self, name, required):
        path = REPO_ROOT / name
        assert path.exists(), (
            f"{name} must be committed at the repo root; regenerate with "
            f"the benchmarks suite or 'repro bench --write'"
        )
        payload = json.loads(path.read_text())
        for key in required:
            assert key in payload, f"{name} lost required key {key!r}"

    def test_core_baseline_covers_the_ladder(self):
        payload = json.loads((REPO_ROOT / CORE_BASELINE).read_text())
        assert set(payload["schedulers"]) == {
            "serial", "edtlp", "edtlp-llp4", "mgps",
        }
        for row in payload["schedulers"].values():
            assert {"makespan_s", "offloads", "llp_invocations"} <= set(row)

    def test_find_repo_root_locates_baselines(self):
        root = find_repo_root(pathlib.Path(__file__))
        assert (root / CORE_BASELINE).exists()


# -- compare() semantics ------------------------------------------------------

class TestCompare:
    BASE = {"a": {"makespan_s": 10.0, "offloads": 600,
                  "seconds_wall": 1.0}, "tag": "x"}

    def test_identical_payloads_pass(self):
        assert compare(self.BASE, self.BASE) == []

    def test_wall_fields_never_compared(self):
        current = {"a": {"makespan_s": 10.0, "offloads": 600,
                         "seconds_wall": 99.0}, "tag": "x"}
        assert compare(current, self.BASE) == []

    def test_drift_beyond_tolerance_flagged(self):
        current = {"a": {"makespan_s": 10.2, "offloads": 600,
                         "seconds_wall": 1.0}, "tag": "x"}
        violations = compare(current, self.BASE)
        assert [v["path"] for v in violations] == ["a.makespan_s"]
        assert violations[0]["kind"] == "drift"

    def test_tolerance_allows_slack(self):
        current = {"a": {"makespan_s": 10.2, "offloads": 600,
                         "seconds_wall": 1.0}, "tag": "x"}
        assert compare(current, self.BASE,
                       tolerances={"makespan_s": 0.05}) == []

    def test_count_metrics_compare_exactly(self):
        current = {"a": {"makespan_s": 10.0, "offloads": 601,
                         "seconds_wall": 1.0}, "tag": "x"}
        violations = compare(current, self.BASE)
        assert [v["path"] for v in violations] == ["a.offloads"]

    def test_missing_and_new_leaves_flagged(self):
        current = {"a": {"makespan_s": 10.0, "extra": 1.0,
                         "seconds_wall": 1.0}, "tag": "x"}
        kinds = {v["path"]: v["kind"] for v in compare(current, self.BASE)}
        assert kinds == {"a.offloads": "missing", "a.extra": "new"}

    def test_non_numeric_leaves_compare_exactly(self):
        current = dict(self.BASE, tag="y")
        violations = compare(current, self.BASE)
        assert [v["path"] for v in violations] == ["tag"]
        assert violations[0]["kind"] == "changed"

    def test_flatten_paths(self):
        flat = flatten({"a": {"b": [1, {"c": 2}]}, "d": 3})
        assert flat == {"a.b.0": 1, "a.b.1.c": 2, "d": 3}

    def test_stable_payload_rounds_but_passes_wall_through(self):
        raw = {"x": 0.123456789123456789, "t_wall": 0.123456789123456789}
        out = stable_payload(raw)
        assert out["x"] != raw["x"]  # rounded
        assert out["t_wall"] == raw["t_wall"]  # verbatim


# -- throughput floors --------------------------------------------------------

class TestPerfFloors:
    BASE = {"scenarios": {"fig8": {"events": 9016,
                                   "events_per_sec_wall": 100000.0,
                                   "seconds_wall": 0.09}}}

    def _current(self, rate):
        return {"scenarios": {"fig8": {"events": 9016,
                                       "events_per_sec_wall": rate,
                                       "seconds_wall": 0.09}}}

    def test_equal_rate_passes(self):
        assert check_perf_floors(self._current(100000.0), self.BASE) == []

    def test_faster_never_fails(self):
        assert check_perf_floors(self._current(1e9), self.BASE) == []

    def test_regression_within_tolerance_passes(self):
        # 30% default tolerance: 71k is above the 70k floor.
        assert check_perf_floors(self._current(71000.0), self.BASE) == []

    def test_regression_beyond_tolerance_fails(self):
        violations = check_perf_floors(self._current(69000.0), self.BASE)
        assert [v["path"] for v in violations] == [
            "scenarios.fig8.events_per_sec_wall"
        ]
        v = violations[0]
        assert v["kind"] == "throughput"
        assert v["floor"] == pytest.approx(70000.0)
        assert v["tolerance"] == PERF_REGRESSION_TOLERANCE

    def test_missing_rate_flagged(self):
        current = {"scenarios": {"fig8": {"events": 9016}}}
        violations = check_perf_floors(current, self.BASE)
        assert [v["kind"] for v in violations] == ["missing"]

    def test_explicit_tolerance_overrides_default(self):
        assert check_perf_floors(self._current(69000.0), self.BASE,
                                 tolerance=0.5) == []
        violations = check_perf_floors(self._current(99000.0), self.BASE,
                                       tolerance=0.0)
        assert len(violations) == 1

    def test_env_tolerance_respected(self, monkeypatch):
        monkeypatch.setenv(PERF_TOLERANCE_ENV, "0.5")
        assert perf_tolerance() == 0.5
        assert check_perf_floors(self._current(60000.0), self.BASE) == []
        # An explicit override still wins over the environment.
        assert perf_tolerance(0.1) == 0.1

    def test_wall_rates_skipped_by_compare(self):
        # The very fields the floors enforce are invisible to the
        # two-sided diff — wall fields stay informational there.
        assert is_wall_field("scenarios.fig8.events_per_sec_wall")
        assert not is_wall_field("scenarios.fig8.events")
        current = self._current(12345.0)
        assert compare(current, self.BASE) == []


# -- the gate, end to end -----------------------------------------------------

class TestRegressionGate:
    @pytest.fixture(scope="class")
    def current(self):
        return measure_core()

    def test_fresh_measurement_matches_committed_baseline(self, current):
        baseline = json.loads((REPO_ROOT / CORE_BASELINE).read_text())
        violations = compare(current, baseline)
        assert violations == [], (
            "scheduler behavior drifted from the committed BENCH_core.json "
            "baseline; if intended, refresh it with 'repro bench --write' "
            f"and commit the diff: {violations}"
        )

    def test_check_baselines_passes(self, current):
        ok, report = check_baselines(root=REPO_ROOT, current_core=current)
        assert ok, report
        assert "bench: OK" in report

    def test_cli_bench_check_exits_zero(self, capsys):
        assert main(["bench", "--check"]) == 0
        out = capsys.readouterr().out
        assert "bench: OK" in out
