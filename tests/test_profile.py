"""Tests for the wall-clock profiling layer.

Tier-1 guarantees:

* **Determinism** — the same seeded workload profiled twice yields the
  identical section tree (names, call counts) and counters; only the
  wall-time fields differ between runs.
* **Zero overhead off** — running with ``profiler=None`` leaves the
  schedule bit-identical to a profiled run: same makespan, same
  digests, same event counts.  The profiler observes, never perturbs.
* The :class:`~repro.obs.profile.Profiler` primitive itself: exclusive
  vs inclusive time under nesting, instantaneous ``account`` leaves,
  counters, the deterministic report shape, and the exporters
  (text table, Chrome trace-event spans).
* The three surfaces: ``repro profile`` (table and ``--json``), the
  ``#perf`` report lane, and the :func:`measure_throughput` grid.
"""

import json

import pytest

from repro.cell.params import BladeParams
from repro.cli import main
from repro.core.runner import run_experiment
from repro.core.schedulers import mgps
from repro.obs import MetricsRegistry, Profiler, render_report
from repro.obs.bench import measure_throughput
from repro.obs.profile import (
    events_per_second,
    profile_chrome_events,
    render_profile,
    write_profile_trace,
)
from repro.sim.trace import Tracer
from repro.workloads.traces import Workload


def _small_workload():
    return Workload(bootstraps=2, tasks_per_bootstrap=40, seed=0)


def _run(profiler=None, tracer=None, metrics=None):
    return run_experiment(
        mgps(), _small_workload(), blade=BladeParams(), seed=0,
        tracer=tracer, metrics=metrics, profiler=profiler,
    )


# -- the Profiler primitive ---------------------------------------------------

class TestProfiler:
    def test_section_nesting_splits_self_and_total(self):
        # A fake clock makes wall time deterministic: each call returns
        # the next value (first tick = profiler birth, last = report),
        # so outer spans 0..10s with 2..5s in the child.
        ticks = iter([0.0, 0.0, 2.0, 5.0, 10.0, 10.0])
        prof = Profiler(time_source=lambda: next(ticks))
        with prof.section("outer"):
            with prof.section("inner"):
                pass
        report = prof.report()
        outer = report["sections"]["outer"]
        inner = report["sections"]["inner"]
        assert outer["total_s"] == pytest.approx(10.0)
        assert outer["self_s"] == pytest.approx(7.0)  # 10 - 3 in child
        assert inner["total_s"] == pytest.approx(3.0)
        assert inner["self_s"] == pytest.approx(3.0)
        assert outer["calls"] == inner["calls"] == 1

    def test_account_credits_enclosing_section(self):
        ticks = iter([0.0, 0.0, 10.0, 10.0])
        prof = Profiler(time_source=lambda: next(ticks))
        with prof.section("outer"):
            prof.account("leaf", 4.0)
        report = prof.report()
        assert report["sections"]["leaf"]["total_s"] == pytest.approx(4.0)
        # The leaf's time is subtracted from the enclosing section's
        # exclusive time exactly once.
        assert report["sections"]["outer"]["self_s"] == pytest.approx(6.0)

    def test_counters_and_heap_tallies(self):
        prof = Profiler()
        prof.count("widgets")
        prof.count("widgets", 2)
        prof.set_count("gadgets", 7)
        prof.heap_pushes += 3
        prof.heap_pops += 2
        counters = prof.report()["counters"]
        assert counters["widgets"] == 3
        assert counters["gadgets"] == 7
        assert counters["sim.heap_pushes"] == 3
        assert counters["sim.heap_pops"] == 2

    def test_call_times_and_passes_through(self):
        prof = Profiler()
        assert prof.call("f", lambda x: x + 1, 41) == 42
        assert prof.report()["sections"]["f"]["calls"] == 1

    def test_report_shape(self):
        prof = Profiler()
        with prof.section("s"):
            pass
        report = prof.report()
        assert set(report) == {"wall_s", "sections", "counters", "rates"}
        assert set(report["sections"]["s"]) == {
            "calls", "total_s", "self_s", "mean_us", "p50_us", "p95_us",
        }

    def test_events_per_second_prefers_simulate_section(self):
        sections = {"run.simulate": {"total_s": 2.0}}
        assert events_per_second(100, sections, 50.0) == pytest.approx(50.0)
        assert events_per_second(100, {}, 50.0) == pytest.approx(2.0)
        assert events_per_second(100, {}, 0.0) == 0.0

    def test_span_collection_is_bounded(self):
        prof = Profiler(keep_spans=True, max_spans=3)
        for _ in range(5):
            with prof.section("s"):
                pass
        assert len(prof.spans()) == 3


# -- determinism and the profiler=None gate -----------------------------------

class TestDeterminism:
    def test_section_tree_and_counts_identical_across_runs(self):
        prof_a, prof_b = Profiler(), Profiler()
        _run(profiler=prof_a)
        _run(profiler=prof_b)
        rep_a, rep_b = prof_a.report(), prof_b.report()
        # Identical tree: same section names, same call counts.
        assert sorted(rep_a["sections"]) == sorted(rep_b["sections"])
        calls_a = {k: v["calls"] for k, v in rep_a["sections"].items()}
        calls_b = {k: v["calls"] for k, v in rep_b["sections"].items()}
        assert calls_a == calls_b
        # Identical counters, including the heap tallies.
        assert rep_a["counters"] == rep_b["counters"]
        # Wall time is the only thing allowed to vary.
        assert rep_a["counters"]["sim.events_processed"] > 0

    def test_profiler_off_leaves_run_bit_identical(self):
        off = _run(profiler=None)
        on = _run(profiler=Profiler())
        assert off.makespan == on.makespan
        assert off.offloads == on.offloads
        assert off.result_digest == on.result_digest
        assert off.bootstrap_digests == on.bootstrap_digests
        assert off.events_processed == on.events_processed

    def test_events_processed_matches_heap_pops(self):
        prof = Profiler()
        result = _run(profiler=prof)
        counters = prof.report()["counters"]
        assert counters["sim.events_processed"] == result.events_processed
        assert counters["sim.heap_pops"] == result.events_processed


# -- exporters ----------------------------------------------------------------

class TestExport:
    def test_render_profile_table(self):
        prof = Profiler()
        _run(profiler=prof)
        text = render_profile(prof.report(), sort="self", top=5,
                              title="unit test")
        assert "unit test" in text
        assert "events/s" in text
        assert "run.simulate" in text
        assert "counters:" in text

    def test_render_profile_sort_keys(self):
        prof = Profiler()
        _run(profiler=prof)
        for sort in ("self", "total", "calls"):
            assert render_profile(prof.report(), sort=sort)
        # Unknown sort keys fall back to self-time ordering.
        report = prof.report()
        assert render_profile(report, sort="bogus") == render_profile(
            report, sort="self"
        )

    def test_chrome_events_need_kept_spans(self):
        prof = Profiler(keep_spans=True)
        _run(profiler=prof)
        events = profile_chrome_events(prof)
        phases = {e["ph"] for e in events}
        assert "X" in phases  # complete wall spans
        assert all(e["pid"] == 1000 for e in events)
        names = {e["name"] for e in events if e["ph"] == "X"}
        assert "run.simulate" in names

    def test_write_profile_trace_merges_sim_and_wall(self, tmp_path):
        tracer = Tracer(enabled=True)
        prof = Profiler(keep_spans=True)
        _run(profiler=prof, tracer=tracer)
        path = tmp_path / "trace.json"
        write_profile_trace(tracer, prof, path)
        doc = json.loads(path.read_text())
        pids = {e.get("pid") for e in doc["traceEvents"]}
        assert 1000 in pids          # wall-clock lane
        assert pids - {1000}         # at least one sim-time lane


# -- the three surfaces -------------------------------------------------------

class TestSurfaces:
    def test_cli_profile_json(self, capsys):
        rc = main(["profile", "--scenario", "fig8", "--bootstraps", "2",
                   "--tasks", "40", "--json"])
        assert rc == 0
        report = json.loads(capsys.readouterr().out)
        assert report["counters"]["sim.events_processed"] > 0
        assert report["rates"]["events_per_wall_second"] > 0
        assert any(name.startswith("sim.event.")
                   for name in report["sections"])

    def test_cli_profile_table_and_perfetto(self, tmp_path, capsys):
        out = tmp_path / "prof.json"
        rc = main(["profile", "--scenario", "fig8", "--bootstraps", "2",
                   "--tasks", "40", "--sort", "calls", "--perfetto",
                   str(out)])
        assert rc == 0
        assert "wall-clock profile" in capsys.readouterr().out
        assert json.loads(out.read_text())["traceEvents"]

    def test_report_perf_lane_populated(self):
        tracer = Tracer(enabled=True)
        metrics = MetricsRegistry()
        prof = Profiler()
        _run(profiler=prof, tracer=tracer, metrics=metrics)
        html = render_report(tracer, metrics, profile=prof.report())
        assert 'id="perf"' in html
        assert "self (exclusive) time" in html
        assert "run.simulate" in html

    def test_report_perf_lane_empty_state(self):
        tracer = Tracer(enabled=True)
        metrics = MetricsRegistry()
        _run(tracer=tracer, metrics=metrics)
        html = render_report(tracer, metrics)
        assert 'id="perf"' in html
        assert "No wall-clock profile" in html

    def test_measure_throughput_grid_shape(self):
        grid = measure_throughput(bootstraps=1, tasks=30, seed=0,
                                  duration_s=120.0, reps=1)
        assert set(grid) == {"workload", "scenarios"}
        fig8 = grid["scenarios"]["fig8"]
        serve = grid["scenarios"]["serve"]
        assert fig8["events"] > 0
        assert fig8["events_per_sec_wall"] > 0
        assert serve["jobs"] >= 0
        assert serve["events_per_sec_wall"] > 0
        # Event/job counts are deterministic for a fixed workload.
        again = measure_throughput(bootstraps=1, tasks=30, seed=0,
                                   duration_s=120.0, reps=1)
        assert again["scenarios"]["fig8"]["events"] == fig8["events"]
        assert again["scenarios"]["serve"]["events"] == serve["events"]
        assert again["scenarios"]["serve"]["jobs"] == serve["jobs"]
