"""Tests for the off-load granularity governor."""

import pytest

from repro.core.granularity import GranularityGovernor
from repro.workloads.taskspec import LoopSpec, TaskSpec

US = 1e-6


def task(function="f", spe_us=96.0, ppe_us=130.0):
    return TaskSpec(
        function=function,
        spe_time=spe_us * US,
        ppe_time=ppe_us * US,
        naive_spe_time=2 * spe_us * US,
    )


def test_first_offload_is_optimistic():
    g = GranularityGovernor(t_comm=0.35 * US)
    d = g.decide(task())
    assert d.offload and d.reason == "optimistic"


def test_coarse_task_keeps_offloading():
    g = GranularityGovernor(t_comm=0.35 * US)
    t = task(spe_us=96, ppe_us=130)
    g.decide(t)
    g.record_spe("f", 96 * US)
    d = g.decide(t)
    assert d.offload and d.reason == "pass"


def test_fine_task_throttled_after_measurement():
    g = GranularityGovernor(t_comm=0.35 * US)
    t = task(spe_us=8, ppe_us=4)
    g.decide(t)
    g.record_spe("f", 8 * US)
    d = g.decide(t)
    assert not d.offload and d.reason == "fail"
    assert g.throttled == 1


def test_t_code_counts_against_offload():
    g = GranularityGovernor(t_comm=0.35 * US)
    t = task(spe_us=96, ppe_us=100)
    g.decide(t)
    g.record_spe("f", 96 * US)
    # Without code cost it passes; with a large code load it fails.
    assert g.decide(t, t_code=0.0).offload
    assert not g.decide(t, t_code=50 * US).offload


def test_communication_cost_in_test():
    # t_spe + 2 t_comm must be under t_ppe.
    g = GranularityGovernor(t_comm=10 * US)
    t = task(spe_us=96, ppe_us=100)
    g.decide(t)
    g.record_spe("f", 96 * US)
    assert not g.decide(t).offload


def test_reprobe_after_streak():
    g = GranularityGovernor(t_comm=0.35 * US, reprobe_interval=5)
    t = task(spe_us=8, ppe_us=4)
    g.decide(t)
    g.record_spe("f", 8 * US)
    reasons = [g.decide(t).reason for _ in range(5)]
    assert reasons[:4] == ["fail"] * 4
    assert reasons[4] == "reprobe"


def test_reprobe_recovers_from_stale_measurement():
    """A transiently slow SPE measurement must not throttle forever."""
    g = GranularityGovernor(t_comm=0.35 * US, ewma_alpha=1.0, reprobe_interval=3)
    t = task(spe_us=96, ppe_us=130)
    g.decide(t)
    g.record_spe("f", 200 * US)  # contaminated sample: fails the test
    assert not g.decide(t).offload
    assert not g.decide(t).offload
    d = g.decide(t)
    assert d.reason == "reprobe"
    g.record_spe("f", 96 * US)  # fresh, sane measurement
    assert g.decide(t).reason == "pass"


def test_disabled_always_offloads():
    g = GranularityGovernor(t_comm=0.35 * US, enabled=False)
    t = task(spe_us=8, ppe_us=4)
    g.decide(t)
    g.record_spe("f", 8 * US)
    assert g.decide(t).reason == "disabled"
    assert g.throttled == 0


def test_per_function_isolation():
    g = GranularityGovernor(t_comm=0.35 * US)
    fine = task(function="fine", spe_us=8, ppe_us=4)
    coarse = task(function="coarse", spe_us=96, ppe_us=130)
    g.decide(fine)
    g.decide(coarse)
    g.record_spe("fine", 8 * US)
    g.record_spe("coarse", 96 * US)
    assert not g.decide(fine).offload
    assert g.decide(coarse).offload


def test_ewma_smooths_measurements():
    g = GranularityGovernor(t_comm=0.35 * US, ewma_alpha=0.1)
    g.record_spe("f", 100 * US)
    g.record_spe("f", 200 * US)
    # 0.9 * 100 + 0.1 * 200 = 110 us
    assert g.measured_spe("f") == pytest.approx(110 * US)


def test_invalid_construction():
    with pytest.raises(ValueError):
        GranularityGovernor(t_comm=-1.0)
    with pytest.raises(ValueError):
        GranularityGovernor(t_comm=0.0, ewma_alpha=0.0)
    with pytest.raises(ValueError):
        GranularityGovernor(t_comm=0.0, reprobe_interval=0)
