"""Tests for majority-rule consensus and support annotation."""

import numpy as np
import pytest

from repro.phylo import (
    Tree,
    annotate_support,
    majority_rule_consensus,
    split_frequencies,
)
from repro.phylo.bootstrap import _bipartitions


def tree(seed, n=8):
    return Tree.random_topology(n, np.random.default_rng(seed))


class TestSplitFrequencies:
    def test_identical_trees_full_support(self):
        t = tree(0)
        freqs = split_frequencies([t.copy() for _ in range(5)])
        assert all(f == 1.0 for f in freqs.values())
        assert set(freqs) == _bipartitions(t)

    def test_mixed_trees_partial_support(self):
        trees = [tree(0).copy() for _ in range(3)] + [tree(99)]
        freqs = split_frequencies(trees)
        assert any(f == 0.75 for f in freqs.values())
        assert all(0 < f <= 1 for f in freqs.values())

    def test_validation(self):
        with pytest.raises(ValueError):
            split_frequencies([])
        with pytest.raises(ValueError):
            split_frequencies([tree(0, 5), tree(0, 6)])


class TestMajorityRule:
    def test_unanimous_trees_reproduce_topology(self):
        t = tree(1)
        cons, sup = majority_rule_consensus([t.copy() for _ in range(4)])
        assert _bipartitions(cons) == _bipartitions(t)
        assert all(s == 1.0 for s in sup.values())

    def test_majority_beats_minority(self):
        trees = [tree(2).copy() for _ in range(3)] + [tree(50), tree(51)]
        cons, sup = majority_rule_consensus(trees)
        # Every split of the consensus is a split of the majority tree.
        assert _bipartitions(cons) <= _bipartitions(tree(2))
        assert all(s > 0.5 for s in sup.values())

    def test_conflicting_trees_collapse_to_star(self):
        # Many mutually conflicting topologies: few (or no) majority
        # splits survive; the consensus is (near-)star-like.
        trees = [tree(s) for s in range(10)]
        cons, sup = majority_rule_consensus(trees)
        assert len(sup) <= 2
        # Leaves all present regardless.
        assert sorted(l.taxon for l in cons.leaves()) == list(range(8))

    def test_greedy_adds_compatible_minority_splits(self):
        trees = [tree(3).copy(), tree(3).copy(), tree(60), tree(61)]
        strict, sup_s = majority_rule_consensus(trees)
        greedy, sup_g = majority_rule_consensus(trees, greedy=True)
        assert len(sup_g) >= len(sup_s)
        # Greedy result is still a valid tree over all taxa.
        assert sorted(l.taxon for l in greedy.leaves()) == list(range(8))

    def test_accepted_splits_mutually_compatible(self):
        trees = [tree(s) for s in (4, 4, 5, 6)]
        cons, sup = majority_rule_consensus(trees, greedy=True)
        # A realizable tree exists: _bipartitions(cons) must contain every
        # accepted split.
        assert set(sup) == _bipartitions(cons)

    def test_min_support_validation(self):
        with pytest.raises(ValueError):
            majority_rule_consensus([tree(0)], min_support=1.5)


class TestBootstopEdgeCases:
    """Consensus corners the serving-layer bootstop monitor leans on."""

    def test_tie_support_excluded_at_exactly_half(self):
        # Two distinct topologies: shared splits get 1.0, the rest tie
        # at exactly 0.5.  Majority rule is *strict* (f > min_support),
        # so a 0.5 tie never enters the consensus — only unanimous
        # splits survive a two-tree consensus.
        trees = [tree(0), tree(99)]
        freqs = split_frequencies(trees)
        assert 0.5 in freqs.values()  # the tie exists
        cons, sup = majority_rule_consensus(trees)
        assert all(s == 1.0 for s in sup.values())
        assert not any(s == 0.5 for s in sup.values())

    def test_tie_admitted_when_threshold_below_half(self):
        # Lowering min_support under the tie admits 0.5 splits (where
        # mutually compatible) — the strictness is the threshold's, not
        # the split's.
        trees = [tree(0), tree(99)]
        _, sup = majority_rule_consensus(trees, min_support=0.49)
        assert any(s == 0.5 for s in sup.values())

    def test_single_replicate_consensus_is_the_tree(self):
        # A one-tree "consensus" (bootstop at its most extreme) must
        # reproduce that tree's splits verbatim with unit support.
        t = tree(12)
        freqs = split_frequencies([t])
        assert set(freqs) == _bipartitions(t)
        assert all(f == 1.0 for f in freqs.values())
        cons, sup = majority_rule_consensus([t])
        assert _bipartitions(cons) == _bipartitions(t)
        assert all(s == 1.0 for s in sup.values())

    def test_identical_trees_converge_at_earliest_checkpoint(self):
        # Identical replicates: support frequencies never move, so the
        # monitor converges at the earliest arithmetic opportunity —
        # min_replicates (baseline checkpoint) + stable_checks windows.
        from repro.serve.bootstop import BootstopConfig, BootstopMonitor

        cfg = BootstopConfig(min_replicates=20, check_every=5,
                             threshold=0.05, stable_checks=2)
        monitor = BootstopMonitor(cfg)
        t = tree(3)
        fired = []
        for i in range(40):
            if monitor.add(t.copy()):
                fired.append(i + 1)
        assert monitor.converged
        assert monitor.converged_at == 30  # 20 + 2 * 5
        assert fired == [30]  # True exactly once, never again
        # Checkpoint trajectory: baseline at 20, then two zero deltas.
        assert monitor.history[0] == (20, float("inf"))
        assert [d for _n, d in monitor.history[1:]] == [0.0, 0.0]


class TestAnnotateSupport:
    def test_self_support_is_one(self):
        t = tree(7)
        ann = annotate_support(t, [t.copy() for _ in range(3)])
        assert ann
        assert all(v == 1.0 for v in ann.values())

    def test_absent_splits_zero(self):
        t = tree(8)
        other = tree(70)
        ann = annotate_support(t, [other])
        assert min(ann.values()) == 0.0

    def test_matches_split_frequencies(self):
        t = tree(9)
        trees = [t.copy(), t.copy(), tree(71)]
        freqs = split_frequencies(trees)
        ann = annotate_support(t, trees)
        below = {}
        all_taxa = frozenset(range(8))
        for node in t.postorder():
            below[node.id] = (
                frozenset([node.taxon]) if node.is_leaf
                else frozenset().union(*(below[c.id] for c in node.children))
            )
        for node_id, support in ann.items():
            side = below[node_id]
            key = side if 0 in side else all_taxa - side
            assert support == freqs.get(key, 0.0)
