"""Tests for the observability subsystem (spans, metrics, exporters).

Covers the PR's acceptance surface: span nesting and the cheap disabled
path, histogram percentiles, the Chrome trace-event schema, Tracer
payload backcompat and JSONL round-trips, registry consumption by the
analysis layer, and — most importantly — that observability never
perturbs scheduler decisions.
"""

import json

import pytest

from repro.analysis.metrics import (
    llp_chunk_profile,
    offload_latency_percentiles,
    registry_value,
    scheduler_summary,
)
from repro.cell.params import BladeParams
from repro.core.runner import run_experiment
from repro.core.schedulers import mgps
from repro.obs import (
    NULL_REGISTRY,
    NULL_SPAN,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    SpanRecorder,
    chrome_trace,
    chrome_trace_events,
)
from repro.sim.trace import TraceRecord, Tracer
from repro.workloads.traces import Workload


# -- metrics registry ---------------------------------------------------------

class TestMetrics:
    def test_counter_increments(self):
        c = Counter("x")
        c.inc()
        c.inc(3)
        assert c.value == 4
        assert c.snapshot() == {"type": "counter", "value": 4}

    def test_gauge_tracks_last_value_and_updates(self):
        g = Gauge("y")
        g.set(1.5)
        g.set(-2.0)
        assert g.value == -2.0
        assert g.snapshot()["updates"] == 2

    def test_histogram_percentiles_interpolate(self):
        h = Histogram("h", buckets=(1, 2, 4, 8, 16))
        for v in range(1, 11):
            h.observe(v)
        assert h.count == 10
        assert h.min == 1 and h.max == 10
        # Percentiles are interpolated within buckets but clamped to the
        # observed range.
        assert 4 <= h.percentile(50) <= 7
        assert h.percentile(0) == 1
        assert h.percentile(100) == 10

    def test_histogram_overflow_bucket(self):
        h = Histogram("h", buckets=(1, 2))
        h.observe(1000.0)
        snap = h.snapshot()
        assert snap["count"] == 1
        assert snap["max"] == 1000.0

    def test_registry_get_or_create_and_type_check(self):
        reg = MetricsRegistry()
        c = reg.counter("a.b")
        assert reg.counter("a.b") is c
        with pytest.raises(TypeError):
            reg.gauge("a.b")

    def test_registry_snapshot_sorted_and_json(self):
        reg = MetricsRegistry()
        reg.counter("z").inc()
        reg.gauge("a").set(0.1)
        assert reg.names() == ["a", "z"]
        snap = json.loads(reg.to_json())
        assert snap["z"]["value"] == 1
        assert "metrics snapshot (2 instruments)" in reg.render()

    def test_null_registry_is_inert(self):
        n = NULL_REGISTRY
        n.counter("x").inc()
        n.gauge("y").set(3)
        n.histogram("z").observe(1.0)
        assert n.snapshot() == {}
        assert n.counter("x") is n.histogram("z")


# -- spans --------------------------------------------------------------------

class TestSpans:
    def test_span_nesting_depths(self):
        tracer = Tracer()
        t = [0.0]
        spans = SpanRecorder(tracer, lambda: t[0])
        with spans.span("proc", "mpi0", "outer"):
            t[0] = 1.0
            with spans.span("proc", "mpi0", "inner") as sp:
                sp.set(k=42)
                t[0] = 2.0
            t[0] = 3.0
        events = [(r.event, r.get("name"), r.get("depth"))
                  for r in tracer.records]
        assert events == [
            ("span_begin", "outer", 0),
            ("span_begin", "inner", 1),
            ("span_end", "inner", 1),
            ("span_end", "outer", 0),
        ]
        assert tracer.records[2].get("k") == 42

    def test_span_records_error_attribute(self):
        tracer = Tracer()
        spans = SpanRecorder(tracer, lambda: 0.0)
        with pytest.raises(ValueError):
            with spans.span("proc", "a", "boom"):
                raise ValueError("x")
        assert tracer.records[-1].get("error") == "ValueError"

    def test_disabled_path_allocates_nothing(self):
        tracer = Tracer(enabled=False)
        spans = SpanRecorder(tracer, lambda: 0.0)
        sp = spans.span("proc", "a", "x")
        assert sp is NULL_SPAN
        assert spans.span("proc", "b", "y") is NULL_SPAN  # shared singleton
        with sp as s:
            s.set(anything=1)
        assert tracer.records == []

    def test_clock_object_with_now(self):
        class Env:
            now = 7.5

        tracer = Tracer()
        spans = SpanRecorder(tracer, Env())
        with spans.span("c", "a", "n"):
            pass
        assert tracer.records[0].time == 7.5


# -- tracer payload conventions ----------------------------------------------

class TestTracerPayloads:
    def test_emit_kwargs_backcompat(self):
        tracer = Tracer()
        tracer.emit(1.0, "c", "a", "e", x=1, y=2)
        assert tracer.records[0].data == (("x", 1), ("y", 2))

    def test_emit_accepts_mapping(self):
        tracer = Tracer()
        tracer.emit(1.0, "c", "a", "e", {"x": 1, "y": 2})
        assert tracer.records[0].get("x") == 1

    def test_emit_accepts_pairs_and_merges_kwargs(self):
        tracer = Tracer()
        tracer.emit(1.0, "c", "a", "e", (("x", 1),), y=2)
        assert tracer.records[0].data == (("x", 1), ("y", 2))

    def test_record_stays_hashable(self):
        tracer = Tracer()
        tracer.emit(1.0, "c", "a", "e", {"x": (1, 2)})
        assert {tracer.records[0]}  # frozen dataclass, tuple payload

    def test_jsonl_round_trip_exact(self):
        tracer = Tracer()
        tracer.emit(0.5, "spe", "spe0", "task_start", function="newview")
        tracer.emit(1.5, "spe", "spe0", "task_end",
                    workers=("spe1", "spe2"), n=3)
        text = tracer.to_jsonl()
        assert len(text.splitlines()) == 2
        back = Tracer.from_jsonl(text)
        assert back.records == tracer.records
        # Idempotent: serialize -> parse -> serialize is stable.
        assert back.to_jsonl() == text

    def test_jsonl_round_trip_on_real_run(self):
        tracer = Tracer()
        wl = Workload(bootstraps=2, tasks_per_bootstrap=60, seed=0)
        run_experiment(mgps(), wl, tracer=tracer)
        assert tracer.records
        back = Tracer.from_jsonl(tracer.to_jsonl())
        assert back.records == tracer.records


# -- exporters ----------------------------------------------------------------

class TestChromeExport:
    def test_schema_and_pairing(self):
        tracer = Tracer()
        wl = Workload(bootstraps=2, tasks_per_bootstrap=60, seed=0)
        run_experiment(mgps(), wl, tracer=tracer)
        doc = chrome_trace(tracer)
        assert set(doc) == {"traceEvents", "displayTimeUnit", "otherData"}
        events = doc["traceEvents"]
        json.dumps(doc)  # everything serializable
        per_tid = {}
        for e in events:
            assert {"ph", "pid", "tid", "name"} <= set(e)
            if e["ph"] in "BE":
                key = (e["pid"], e["tid"])
                per_tid[key] = per_tid.get(key, 0) + (
                    1 if e["ph"] == "B" else -1
                )
                assert per_tid[key] >= 0
        assert all(v == 0 for v in per_tid.values())

    def test_timestamps_in_microseconds(self):
        tracer = Tracer()
        tracer.emit(0.25, "spe", "spe0", "task_start", function="f")
        tracer.emit(0.50, "spe", "spe0", "task_end", function="f")
        events = [e for e in chrome_trace_events(tracer) if e["ph"] != "M"]
        assert events[0]["ts"] == 250000.0
        assert events[1]["ts"] == 500000.0

    def test_multiple_runs_get_distinct_pids(self):
        t1, t2 = Tracer(), Tracer()
        for t in (t1, t2):
            t.emit(0.0, "spe", "spe0", "task_start", function="f")
            t.emit(1.0, "spe", "spe0", "task_end", function="f")
        events = chrome_trace_events({"edtlp": t1, "mgps": t2})
        pids = {e["pid"] for e in events}
        assert len(pids) == 2
        names = {e["args"]["name"] for e in events
                 if e["ph"] == "M" and e["name"] == "process_name"}
        assert names == {"edtlp", "mgps"}

    def test_actor_tid_assignment_is_sorted(self):
        tracer = Tracer()
        for actor in ("spe3", "spe1", "spe2"):
            tracer.emit(0.0, "spe", actor, "task_start", function="f")
            tracer.emit(1.0, "spe", actor, "task_end", function="f")
        meta = {e["args"]["name"]: e["tid"]
                for e in chrome_trace_events(tracer)
                if e["ph"] == "M" and e["name"] == "thread_name"}
        tids = [meta[k] for k in sorted(meta)]
        assert tids == sorted(tids)


# -- observability must not perturb the simulation ---------------------------

class TestNonPerturbation:
    def test_fig8_mgps_decisions_identical_on_off(self):
        wl = Workload(bootstraps=3, tasks_per_bootstrap=150, seed=0)
        blade = BladeParams()
        plain = run_experiment(mgps(), wl, blade=blade, seed=0)
        traced = run_experiment(
            mgps(), wl, blade=blade, seed=0,
            tracer=Tracer(enabled=True), metrics=MetricsRegistry(),
        )
        assert traced.makespan == plain.makespan
        assert traced.raw_makespan == plain.raw_makespan
        assert traced.offloads == plain.offloads
        assert traced.llp_invocations == plain.llp_invocations
        assert traced.llp_mode_switches == plain.llp_mode_switches
        assert traced.ppe_context_switches == plain.ppe_context_switches
        assert traced.per_spe_busy == plain.per_spe_busy

    def test_disabled_tracer_emits_nothing(self):
        tracer = Tracer(enabled=False)
        wl = Workload(bootstraps=2, tasks_per_bootstrap=60, seed=0)
        run_experiment(mgps(), wl, tracer=tracer)
        assert tracer.records == []


# -- registry consumption by the analysis layer ------------------------------

class TestRegistryConsumers:
    @pytest.fixture(scope="class")
    def fig8_registry(self):
        metrics = MetricsRegistry()
        wl = Workload(bootstraps=3, tasks_per_bootstrap=150, seed=0)
        result = run_experiment(mgps(), wl, metrics=metrics, seed=0)
        return metrics, result

    def test_summary_matches_result(self, fig8_registry):
        metrics, result = fig8_registry
        s = scheduler_summary(metrics)
        assert s["makespan_s"] == pytest.approx(result.makespan)
        assert s["offloads"] == result.offloads
        assert s["llp_invocations"] == result.llp_invocations
        assert s["ppe_context_switches"] == result.ppe_context_switches
        assert s["spe_utilization"] == pytest.approx(
            result.spe_utilization, abs=1e-9
        )

    def test_mgps_window_metrics_present(self, fig8_registry):
        metrics, _ = fig8_registry
        assert registry_value(metrics, "mgps.decisions") > 0
        u = registry_value(metrics, "mgps.window_utilization")
        assert 0.0 <= u <= 1.0
        assert metrics.get("mgps.u_sample").count > 0

    def test_granularity_outcomes_counted(self, fig8_registry):
        metrics, result = fig8_registry
        s = scheduler_summary(metrics)
        assert s["granularity_accept"] + s["granularity_reject"] > 0
        assert s["granularity_accept"] == result.offloads

    def test_llp_chunk_profile(self, fig8_registry):
        metrics, _ = fig8_registry
        prof = llp_chunk_profile(metrics)
        assert prof["count"] > 0
        assert 0 < prof["p50"] <= prof["max"]

    def test_offload_latency_percentiles_ordered(self, fig8_registry):
        metrics, _ = fig8_registry
        p = offload_latency_percentiles(metrics)
        assert 0 < p["p50"] <= p["p90"] <= p["p99"]

    def test_empty_registry_reads_defaults(self):
        reg = MetricsRegistry()
        assert registry_value(reg, "nope", default=-1.0) == -1.0
        assert llp_chunk_profile(reg)["count"] == 0
        assert offload_latency_percentiles(reg)["p99"] == 0.0
