"""Tests for the observability subsystem (spans, metrics, exporters).

Covers the PR's acceptance surface: span nesting and the cheap disabled
path, histogram percentiles, the Chrome trace-event schema, Tracer
payload backcompat and JSONL round-trips, registry consumption by the
analysis layer, and — most importantly — that observability never
perturbs scheduler decisions.
"""

import json

import pytest

from repro.analysis.metrics import (
    llp_chunk_profile,
    offload_latency_percentiles,
    registry_value,
    scheduler_summary,
)
from repro.cell.params import BladeParams
from repro.core.runner import run_experiment
from repro.core.schedulers import mgps
from repro.obs import (
    NULL_REGISTRY,
    NULL_SPAN,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    SpanRecorder,
    chrome_trace,
    chrome_trace_events,
    labeled,
)
from repro.sim.trace import TraceRecord, Tracer
from repro.workloads.traces import Workload


# -- metrics registry ---------------------------------------------------------

class TestMetrics:
    def test_counter_increments(self):
        c = Counter("x")
        c.inc()
        c.inc(3)
        assert c.value == 4
        assert c.snapshot() == {"type": "counter", "value": 4}

    def test_gauge_tracks_last_value_and_updates(self):
        g = Gauge("y")
        g.set(1.5)
        g.set(-2.0)
        assert g.value == -2.0
        assert g.snapshot()["updates"] == 2

    def test_histogram_percentiles_interpolate(self):
        h = Histogram("h", buckets=(1, 2, 4, 8, 16))
        for v in range(1, 11):
            h.observe(v)
        assert h.count == 10
        assert h.min == 1 and h.max == 10
        # Percentiles are interpolated within buckets but clamped to the
        # observed range.
        assert 4 <= h.percentile(50) <= 7
        assert h.percentile(0) == 1
        assert h.percentile(100) == 10

    def test_histogram_overflow_bucket(self):
        h = Histogram("h", buckets=(1, 2))
        h.observe(1000.0)
        snap = h.snapshot()
        assert snap["count"] == 1
        assert snap["max"] == 1000.0

    def test_registry_get_or_create_and_type_check(self):
        reg = MetricsRegistry()
        c = reg.counter("a.b")
        assert reg.counter("a.b") is c
        with pytest.raises(TypeError):
            reg.gauge("a.b")

    def test_registry_snapshot_sorted_and_json(self):
        reg = MetricsRegistry()
        reg.counter("z").inc()
        reg.gauge("a").set(0.1)
        assert reg.names() == ["a", "z"]
        snap = json.loads(reg.to_json())
        assert snap["z"]["value"] == 1
        assert "metrics snapshot (2 instruments)" in reg.render()

    def test_null_registry_is_inert(self):
        n = NULL_REGISTRY
        n.counter("x").inc()
        n.gauge("y").set(3)
        n.histogram("z").observe(1.0)
        assert n.snapshot() == {}
        assert n.counter("x") is n.histogram("z")


# -- spans --------------------------------------------------------------------

class TestSpans:
    def test_span_nesting_depths(self):
        tracer = Tracer()
        t = [0.0]
        spans = SpanRecorder(tracer, lambda: t[0])
        with spans.span("proc", "mpi0", "outer"):
            t[0] = 1.0
            with spans.span("proc", "mpi0", "inner") as sp:
                sp.set(k=42)
                t[0] = 2.0
            t[0] = 3.0
        events = [(r.event, r.get("name"), r.get("depth"))
                  for r in tracer.records]
        assert events == [
            ("span_begin", "outer", 0),
            ("span_begin", "inner", 1),
            ("span_end", "inner", 1),
            ("span_end", "outer", 0),
        ]
        assert tracer.records[2].get("k") == 42

    def test_span_records_error_attribute(self):
        tracer = Tracer()
        spans = SpanRecorder(tracer, lambda: 0.0)
        with pytest.raises(ValueError):
            with spans.span("proc", "a", "boom"):
                raise ValueError("x")
        assert tracer.records[-1].get("error") == "ValueError"

    def test_disabled_path_allocates_nothing(self):
        tracer = Tracer(enabled=False)
        spans = SpanRecorder(tracer, lambda: 0.0)
        sp = spans.span("proc", "a", "x")
        assert sp is NULL_SPAN
        assert spans.span("proc", "b", "y") is NULL_SPAN  # shared singleton
        with sp as s:
            s.set(anything=1)
        assert tracer.records == []

    def test_clock_object_with_now(self):
        class Env:
            now = 7.5

        tracer = Tracer()
        spans = SpanRecorder(tracer, Env())
        with spans.span("c", "a", "n"):
            pass
        assert tracer.records[0].time == 7.5


# -- tracer payload conventions ----------------------------------------------

class TestTracerPayloads:
    def test_emit_kwargs_backcompat(self):
        tracer = Tracer()
        tracer.emit(1.0, "c", "a", "e", x=1, y=2)
        assert tracer.records[0].data == (("x", 1), ("y", 2))

    def test_emit_accepts_mapping(self):
        tracer = Tracer()
        tracer.emit(1.0, "c", "a", "e", {"x": 1, "y": 2})
        assert tracer.records[0].get("x") == 1

    def test_emit_accepts_pairs_and_merges_kwargs(self):
        tracer = Tracer()
        tracer.emit(1.0, "c", "a", "e", (("x", 1),), y=2)
        assert tracer.records[0].data == (("x", 1), ("y", 2))

    def test_record_stays_hashable(self):
        tracer = Tracer()
        tracer.emit(1.0, "c", "a", "e", {"x": (1, 2)})
        assert {tracer.records[0]}  # frozen dataclass, tuple payload

    def test_jsonl_round_trip_exact(self):
        tracer = Tracer()
        tracer.emit(0.5, "spe", "spe0", "task_start", function="newview")
        tracer.emit(1.5, "spe", "spe0", "task_end",
                    workers=("spe1", "spe2"), n=3)
        text = tracer.to_jsonl()
        assert len(text.splitlines()) == 2
        back = Tracer.from_jsonl(text)
        assert back.records == tracer.records
        # Idempotent: serialize -> parse -> serialize is stable.
        assert back.to_jsonl() == text

    def test_jsonl_round_trip_on_real_run(self):
        tracer = Tracer()
        wl = Workload(bootstraps=2, tasks_per_bootstrap=60, seed=0)
        run_experiment(mgps(), wl, tracer=tracer)
        assert tracer.records
        back = Tracer.from_jsonl(tracer.to_jsonl())
        assert back.records == tracer.records


# -- exporters ----------------------------------------------------------------

class TestChromeExport:
    def test_schema_and_pairing(self):
        tracer = Tracer()
        wl = Workload(bootstraps=2, tasks_per_bootstrap=60, seed=0)
        run_experiment(mgps(), wl, tracer=tracer)
        doc = chrome_trace(tracer)
        assert set(doc) == {"traceEvents", "displayTimeUnit", "otherData"}
        events = doc["traceEvents"]
        json.dumps(doc)  # everything serializable
        per_tid = {}
        for e in events:
            assert {"ph", "pid", "tid", "name"} <= set(e)
            if e["ph"] in "BE":
                key = (e["pid"], e["tid"])
                per_tid[key] = per_tid.get(key, 0) + (
                    1 if e["ph"] == "B" else -1
                )
                assert per_tid[key] >= 0
        assert all(v == 0 for v in per_tid.values())

    def test_timestamps_in_microseconds(self):
        tracer = Tracer()
        tracer.emit(0.25, "spe", "spe0", "task_start", function="f")
        tracer.emit(0.50, "spe", "spe0", "task_end", function="f")
        events = [e for e in chrome_trace_events(tracer) if e["ph"] != "M"]
        assert events[0]["ts"] == 250000.0
        assert events[1]["ts"] == 500000.0

    def test_multiple_runs_get_distinct_pids(self):
        t1, t2 = Tracer(), Tracer()
        for t in (t1, t2):
            t.emit(0.0, "spe", "spe0", "task_start", function="f")
            t.emit(1.0, "spe", "spe0", "task_end", function="f")
        events = chrome_trace_events({"edtlp": t1, "mgps": t2})
        pids = {e["pid"] for e in events}
        assert len(pids) == 2
        names = {e["args"]["name"] for e in events
                 if e["ph"] == "M" and e["name"] == "process_name"}
        assert names == {"edtlp", "mgps"}

    def test_actor_tid_assignment_is_sorted(self):
        tracer = Tracer()
        for actor in ("spe3", "spe1", "spe2"):
            tracer.emit(0.0, "spe", actor, "task_start", function="f")
            tracer.emit(1.0, "spe", actor, "task_end", function="f")
        meta = {e["args"]["name"]: e["tid"]
                for e in chrome_trace_events(tracer)
                if e["ph"] == "M" and e["name"] == "thread_name"}
        tids = [meta[k] for k in sorted(meta)]
        assert tids == sorted(tids)


# -- observability must not perturb the simulation ---------------------------

class TestNonPerturbation:
    def test_fig8_mgps_decisions_identical_on_off(self):
        wl = Workload(bootstraps=3, tasks_per_bootstrap=150, seed=0)
        blade = BladeParams()
        plain = run_experiment(mgps(), wl, blade=blade, seed=0)
        traced = run_experiment(
            mgps(), wl, blade=blade, seed=0,
            tracer=Tracer(enabled=True), metrics=MetricsRegistry(),
        )
        assert traced.makespan == plain.makespan
        assert traced.raw_makespan == plain.raw_makespan
        assert traced.offloads == plain.offloads
        assert traced.llp_invocations == plain.llp_invocations
        assert traced.llp_mode_switches == plain.llp_mode_switches
        assert traced.ppe_context_switches == plain.ppe_context_switches
        assert traced.per_spe_busy == plain.per_spe_busy

    def test_disabled_tracer_emits_nothing(self):
        tracer = Tracer(enabled=False)
        wl = Workload(bootstraps=2, tasks_per_bootstrap=60, seed=0)
        run_experiment(mgps(), wl, tracer=tracer)
        assert tracer.records == []


# -- registry consumption by the analysis layer ------------------------------

class TestRegistryConsumers:
    @pytest.fixture(scope="class")
    def fig8_registry(self):
        metrics = MetricsRegistry()
        wl = Workload(bootstraps=3, tasks_per_bootstrap=150, seed=0)
        result = run_experiment(mgps(), wl, metrics=metrics, seed=0)
        return metrics, result

    def test_summary_matches_result(self, fig8_registry):
        metrics, result = fig8_registry
        s = scheduler_summary(metrics)
        assert s["makespan_s"] == pytest.approx(result.makespan)
        assert s["offloads"] == result.offloads
        assert s["llp_invocations"] == result.llp_invocations
        assert s["ppe_context_switches"] == result.ppe_context_switches
        assert s["spe_utilization"] == pytest.approx(
            result.spe_utilization, abs=1e-9
        )

    def test_mgps_window_metrics_present(self, fig8_registry):
        metrics, _ = fig8_registry
        assert registry_value(metrics, "mgps.decisions") > 0
        u = registry_value(metrics, "mgps.window_utilization")
        assert 0.0 <= u <= 1.0
        assert metrics.get("mgps.u_sample").count > 0

    def test_granularity_outcomes_counted(self, fig8_registry):
        metrics, result = fig8_registry
        s = scheduler_summary(metrics)
        assert s["granularity_accept"] + s["granularity_reject"] > 0
        assert s["granularity_accept"] == result.offloads

    def test_llp_chunk_profile(self, fig8_registry):
        metrics, _ = fig8_registry
        prof = llp_chunk_profile(metrics)
        assert prof["count"] > 0
        assert 0 < prof["p50"] <= prof["max"]

    def test_offload_latency_percentiles_ordered(self, fig8_registry):
        metrics, _ = fig8_registry
        p = offload_latency_percentiles(metrics)
        assert 0 < p["p50"] <= p["p90"] <= p["p99"]

    def test_empty_registry_reads_defaults(self):
        reg = MetricsRegistry()
        assert registry_value(reg, "nope", default=-1.0) == -1.0
        assert llp_chunk_profile(reg)["count"] == 0
        assert offload_latency_percentiles(reg)["p99"] == 0.0


# -- registry merge and labeled names ----------------------------------------

class TestMergeAndLabels:
    def test_labeled_formats_sorted_prometheus_style(self):
        assert labeled("spe.utilization", spe="cell0.spe3") == \
            'spe.utilization{spe="cell0.spe3"}'
        # Labels serialize in sorted key order regardless of kwarg order,
        # values always quoted (Prometheus exposition style).
        assert labeled("m", b=2, a="x") == 'm{a="x",b="2"}'
        assert labeled("m") == "m"

    def test_merge_files_names_under_labels(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        b.counter("runtime.offloads").inc(5)
        a.merge(b, scheduler="mgps")
        inst = a.get('runtime.offloads{scheduler="mgps"}')
        assert inst is not None and inst.value == 5
        assert a.get("runtime.offloads") is None

    def test_merge_combines_counters_and_histograms(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c").inc(2)
        b.counter("c").inc(3)
        a.histogram("h", buckets=(1.0, 10.0)).observe(0.5)
        b.histogram("h", buckets=(1.0, 10.0)).observe(100.0)
        a.merge(b)
        assert a.get("c").value == 5
        h = a.get("h")
        assert h.count == 2
        assert h.min == 0.5 and h.max == 100.0

    def test_merge_gauge_last_write_wins_but_not_untouched(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.gauge("g").set(1.0)
        b.gauge("g").set(7.0)
        a.merge(b)
        assert a.get("g").value == 7.0
        # An untouched incoming gauge must not zero out a written one.
        c = MetricsRegistry()
        c.gauge("g")  # registered, never set
        a.merge(c)
        assert a.get("g").value == 7.0

    def test_merge_rejects_kind_mismatch(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("x").inc()
        b.gauge("x").set(1.0)
        with pytest.raises(TypeError):
            a.merge(b)

    def test_merge_rejects_histogram_layout_mismatch(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("h", buckets=(1.0, 2.0)).observe(1.0)
        b.histogram("h", buckets=(5.0, 50.0)).observe(1.0)
        with pytest.raises(ValueError):
            a.merge(b)

    def test_merge_returns_self_for_chaining(self):
        a, b, c = MetricsRegistry(), MetricsRegistry(), MetricsRegistry()
        b.counter("n").inc()
        c.counter("n").inc()
        out = a.merge(b, run=1).merge(c, run=2)
        assert out is a
        assert {'n{run="1"}', 'n{run="2"}'} <= set(a.names())


# -- exporter edge cases ------------------------------------------------------

class TestExporterEdgeCases:
    def test_empty_trace_exports_metadata_only(self):
        doc = chrome_trace(Tracer())
        assert doc["traceEvents"] == [
            {"ph": "M", "name": "process_name", "pid": 0, "tid": 0,
             "args": {"name": "repro"}},
        ]
        json.dumps(doc)  # and it serializes

    def test_unterminated_spans_get_synthetic_closers(self):
        tracer = Tracer()
        tracer.emit(0.0, "spe", "spe0", "task_start", function="outer")
        tracer.emit(1.0, "spe", "spe0", "task_start", function="inner")
        tracer.emit(2.0, "spe", "spe0", "task_end")  # closes inner only
        events = chrome_trace_events(tracer)
        closers = [e for e in events if e.get("cat") == "incomplete"]
        assert len(closers) == 1
        assert closers[0]["name"] == "outer"
        assert closers[0]["ph"] == "E"
        assert closers[0]["ts"] == 2.0 * 1e6
        assert closers[0]["args"] == {"unterminated": True}
        # B/E events now pair up: equal counts per thread.
        n_b = sum(1 for e in events if e["ph"] == "B")
        n_e = sum(1 for e in events if e["ph"] == "E")
        assert n_b == n_e

    def test_stray_end_event_does_not_crash(self):
        tracer = Tracer()
        tracer.emit(0.5, "spe", "spe0", "task_end")  # end with no begin
        events = chrome_trace_events(tracer)
        assert any(e["ph"] == "E" for e in events)

    def test_mapping_payload_with_non_string_keys(self):
        tracer = Tracer()
        tracer.emit(0.0, "sched", "ppe", "decision", {1: "one", 2: "two"})
        # Chrome export stringifies keys instead of crashing json.dump.
        events = chrome_trace_events(tracer)
        instant = [e for e in events if e["ph"] == "i"]
        assert instant[0]["args"] == {"1": "one", "2": "two"}
        json.dumps(chrome_trace(tracer), sort_keys=True)
        # JSONL keeps the original int keys through a round-trip
        # (pairs serialize as arrays, so key types survive).
        back = Tracer.from_jsonl(tracer.to_jsonl())
        assert back.records[0].get(1) == "one"
        assert back.records[0].data == tracer.records[0].data
