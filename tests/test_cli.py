"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_table2_command(capsys):
    assert main(["table2", "--tasks", "150"]) == 0
    out = capsys.readouterr().out
    assert "Table 2" in out
    assert "llp(paper)" in out


def test_sec51_command(capsys):
    assert main(["sec51", "--tasks", "200"]) == 0
    out = capsys.readouterr().out
    assert "ppe-only" in out


def test_compare_command(capsys):
    assert main(["compare", "--bootstraps", "2", "--tasks", "100"]) == 0
    out = capsys.readouterr().out
    for name in ("linux", "edtlp", "mgps", "llp2", "llp4"):
        assert name in out


def test_fig7_small_panel(capsys):
    assert main(["fig7", "--panel", "a", "--tasks", "60"]) == 0
    out = capsys.readouterr().out
    assert "EDTLP-LLP2" in out and "Figure 7a" in out


def test_fig10_command(capsys):
    assert main(["fig10", "--tasks", "60"]) == 0
    out = capsys.readouterr().out
    assert "Power5" in out and "Xeon" in out


def test_timeline_command(capsys):
    assert main(["timeline", "--scheduler", "edtlp", "--bootstraps", "2",
                 "--tasks", "80", "--width", "40"]) == 0
    out = capsys.readouterr().out
    assert "SPE timeline" in out
    assert "%" in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["bogus"])


def test_bsp_command(capsys):
    assert main(["bsp", "--ranks", "4", "--iterations", "2",
                 "--imbalance", "1.0"]) == 0
    out = capsys.readouterr().out
    assert "BSP" in out and "mgps" in out


def test_fig9_dual_cell_panel(capsys):
    assert main(["fig9", "--panel", "a", "--tasks", "60"]) == 0
    out = capsys.readouterr().out
    assert "two Cells" in out and "MGPS" in out


def test_table1_command(capsys):
    assert main(["table1", "--tasks", "120"]) == 0
    out = capsys.readouterr().out
    assert "edtlp(paper)" in out and "linux(paper)" in out
