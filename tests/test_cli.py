"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_table2_command(capsys):
    assert main(["table2", "--tasks", "150"]) == 0
    out = capsys.readouterr().out
    assert "Table 2" in out
    assert "llp(paper)" in out


def test_sec51_command(capsys):
    assert main(["sec51", "--tasks", "200"]) == 0
    out = capsys.readouterr().out
    assert "ppe-only" in out


def test_compare_command(capsys):
    assert main(["compare", "--bootstraps", "2", "--tasks", "100"]) == 0
    out = capsys.readouterr().out
    for name in ("linux", "edtlp", "mgps", "llp2", "llp4"):
        assert name in out


def test_fig7_small_panel(capsys):
    assert main(["fig7", "--panel", "a", "--tasks", "60"]) == 0
    out = capsys.readouterr().out
    assert "EDTLP-LLP2" in out and "Figure 7a" in out


def test_fig10_command(capsys):
    assert main(["fig10", "--tasks", "60"]) == 0
    out = capsys.readouterr().out
    assert "Power5" in out and "Xeon" in out


def test_timeline_command(capsys):
    assert main(["timeline", "--scheduler", "edtlp", "--bootstraps", "2",
                 "--tasks", "80", "--width", "40"]) == 0
    out = capsys.readouterr().out
    assert "SPE timeline" in out
    assert "%" in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["bogus"])


def test_bsp_command(capsys):
    assert main(["bsp", "--ranks", "4", "--iterations", "2",
                 "--imbalance", "1.0"]) == 0
    out = capsys.readouterr().out
    assert "BSP" in out and "mgps" in out


def test_fig9_dual_cell_panel(capsys):
    assert main(["fig9", "--panel", "a", "--tasks", "60"]) == 0
    out = capsys.readouterr().out
    assert "two Cells" in out and "MGPS" in out


def test_table1_command(capsys):
    assert main(["table1", "--tasks", "120"]) == 0
    out = capsys.readouterr().out
    assert "edtlp(paper)" in out and "linux(paper)" in out


def test_trace_command_writes_chrome_trace(tmp_path, capsys):
    import json

    out_path = tmp_path / "t.json"
    jsonl_path = tmp_path / "t.jsonl"
    assert main(["trace", "fig8", "--out", str(out_path),
                 "--jsonl", str(jsonl_path),
                 "--bootstraps", "2", "--tasks", "60"]) == 0
    out = capsys.readouterr().out
    assert "perfetto" in out

    doc = json.loads(out_path.read_text())
    assert set(doc) >= {"traceEvents", "displayTimeUnit"}
    events = doc["traceEvents"]
    assert events
    phases = {e["ph"] for e in events}
    assert {"B", "E", "M"} <= phases
    for e in events:
        assert {"ph", "pid", "tid", "name"} <= set(e)
        if e["ph"] != "M":
            assert isinstance(e["ts"], (int, float))
    # Every B has a matching E per (pid, tid) — Perfetto requirement.
    depth = {}
    for e in sorted((e for e in events if e["ph"] in "BE"),
                    key=lambda e: e["ts"]):
        key = (e["pid"], e["tid"])
        depth[key] = depth.get(key, 0) + (1 if e["ph"] == "B" else -1)
        assert depth[key] >= 0
    assert all(d == 0 for d in depth.values())
    assert jsonl_path.read_text().count("\n") > 0


def test_stats_command_reports_scheduler_metrics(capsys):
    assert main(["stats", "fig8", "--bootstraps", "3",
                 "--tasks", "100"]) == 0
    out = capsys.readouterr().out
    assert "MGPS window utilization U=" in out
    assert "context switches" in out
    assert "granularity accept/reject" in out
    assert "llp.chunk_size" in out
    assert "metrics snapshot" in out


def test_stats_command_json_mode(capsys):
    import json

    assert main(["stats", "edtlp", "--bootstraps", "2", "--tasks", "60",
                 "--json"]) == 0
    snap = json.loads(capsys.readouterr().out)
    assert snap["runtime.offloads"]["value"] > 0


def test_scenario_trace_flag(tmp_path, capsys):
    import json

    path = tmp_path / "cmp.json"
    assert main(["compare", "--bootstraps", "2", "--tasks", "60",
                 "--trace", str(path)]) == 0
    doc = json.loads(path.read_text())
    # One Perfetto process per scheduler in the comparison.
    pids = {e["pid"] for e in doc["traceEvents"]}
    assert len(pids) == 5


def test_serve_fault_flags_print_digest_verdict(capsys):
    assert main(["serve", "--duration", "900", "--arrival-rate", "0.05",
                 "--min-blades", "3", "--max-blades", "3", "--tenants", "1",
                 "--slow-blade", "0:100:3.0", "--resilience"]) == 0
    out = capsys.readouterr().out
    assert "digests: identical to the fault-free run" in out


def test_serve_rejects_malformed_fault_flag():
    with pytest.raises(SystemExit):
        main(["serve", "--slow-blade", "not-a-fault"])


def test_chaos_command_small_soak(capsys):
    assert main(["chaos", "--plans", "1", "--seed", "1",
                 "--duration", "1200", "--check"]) == 0
    out = capsys.readouterr().out
    assert "verdict: PASS" in out


def test_chaos_command_json_mode(capsys):
    import json

    assert main(["chaos", "--plans", "1", "--seed", "1",
                 "--duration", "1200", "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["ok"]
    assert doc["outcomes"][0]["lost"] == 0
