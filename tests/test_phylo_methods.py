"""Tests for distance methods, Newick parsing and model fitting."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.phylo import (
    Alignment,
    LikelihoodEngine,
    Tree,
    hky,
    jc69,
    jc_distance_matrix,
    neighbor_joining,
    optimize_alpha,
    optimize_kappa,
    p_distance_matrix,
    parse_newick,
    synthesize_alignment,
)
from repro.phylo.bootstrap import _bipartitions
from repro.phylo.modelfit import golden_section_maximize


class TestDistances:
    def test_p_distance_basics(self):
        aln = Alignment.from_sequences(["a", "b"], ["AAAA", "AATT"])
        d = p_distance_matrix(aln)
        assert d[0, 1] == pytest.approx(0.5)
        assert d[0, 0] == 0.0
        assert d[1, 0] == d[0, 1]

    def test_jc_correction_exceeds_p(self):
        aln = Alignment.from_sequences(["a", "b"], ["AAAAAAAA", "AATTAAAA"])
        p = p_distance_matrix(aln)[0, 1]
        d = jc_distance_matrix(aln)[0, 1]
        assert d > p  # correction accounts for multiple hits

    def test_jc_saturation_capped(self):
        aln = Alignment.from_sequences(["a", "b"], ["AAAA", "TTTT"])
        d = jc_distance_matrix(aln)
        assert np.isfinite(d[0, 1])
        assert d[0, 1] <= 5.0

    def test_identical_sequences_zero_distance(self):
        aln = Alignment.from_sequences(["a", "b"], ["ACGT", "ACGT"])
        assert jc_distance_matrix(aln)[0, 1] == pytest.approx(0.0)


class TestNeighborJoining:
    def test_recovers_additive_tree(self):
        # A 4-taxon additive metric with the ((0,1),(2,3)) split.
        d = np.array(
            [
                [0.0, 0.3, 0.9, 1.0],
                [0.3, 0.0, 1.0, 1.1],
                [0.9, 1.0, 0.0, 0.3],
                [1.0, 1.1, 0.3, 0.0],
            ]
        )
        tree = neighbor_joining(d)
        splits = _bipartitions(tree)
        assert frozenset({0, 1}) in splits

    def test_leaf_set_complete(self):
        aln = synthesize_alignment(9, 300, seed=1)
        tree = neighbor_joining(jc_distance_matrix(aln))
        assert sorted(l.taxon for l in tree.leaves()) == list(range(9))
        assert len(tree.root.children) == 3

    def test_branch_lengths_positive(self):
        aln = synthesize_alignment(8, 200, seed=2)
        tree = neighbor_joining(jc_distance_matrix(aln))
        assert all(n.length > 0 for n in tree.branches())

    def test_nj_beats_random_start_likelihood(self):
        aln = synthesize_alignment(10, 400, seed=3)
        model = jc69()
        nj = neighbor_joining(jc_distance_matrix(aln))
        rnd = Tree.random_topology(10, np.random.default_rng(3))
        lik_nj = LikelihoodEngine(aln, model, 1).evaluate(nj)
        lik_rnd = LikelihoodEngine(aln, model, 1).evaluate(rnd)
        assert lik_nj > lik_rnd

    def test_validation(self):
        with pytest.raises(ValueError):
            neighbor_joining(np.zeros((2, 2)))
        with pytest.raises(ValueError):
            neighbor_joining(np.ones((3, 4)))
        asym = np.array([[0, 1, 2], [9, 0, 1], [2, 1, 0.0]])
        with pytest.raises(ValueError):
            neighbor_joining(asym)


class TestNewick:
    def test_roundtrip(self):
        tree = Tree.random_topology(7, np.random.default_rng(0))
        nwk = tree.newick()
        again = parse_newick(nwk)
        assert again.newick() == nwk

    def test_roundtrip_with_names(self):
        names = [f"species_{i}" for i in range(5)]
        tree = Tree.random_topology(5, np.random.default_rng(1))
        nwk = tree.newick(names=names)
        again = parse_newick(nwk, names=names)
        assert again.newick(names=names) == nwk

    def test_topology_preserved(self):
        tree = Tree.random_topology(8, np.random.default_rng(2))
        again = parse_newick(tree.newick())
        assert _bipartitions(again) == _bipartitions(tree)

    def test_branch_lengths_preserved(self):
        tree = Tree.random_topology(6, np.random.default_rng(3))
        again = parse_newick(tree.newick())
        orig = {
            frozenset(l.taxon for l in _leafset(n)): n.length
            for n in tree.branches() if n.is_leaf
        }
        new = {
            frozenset(l.taxon for l in _leafset(n)): n.length
            for n in again.branches() if n.is_leaf
        }
        for key, length in orig.items():
            assert new[key] == pytest.approx(length, abs=1e-6)

    def test_rejects_malformed(self):
        with pytest.raises(ValueError):
            parse_newick("(t0,t1")  # no semicolon
        with pytest.raises(ValueError):
            parse_newick("(t0,t1,t2;")  # unbalanced
        with pytest.raises(ValueError):
            parse_newick("(t0:x,t1,t2);")  # bad length
        with pytest.raises(ValueError):
            parse_newick("(t0,t5,t2);")  # non-contiguous taxa
        with pytest.raises(ValueError):
            parse_newick("(alpha,beta,gamma);", names=["alpha", "beta"])

    @given(seed=st.integers(min_value=0, max_value=200),
           n=st.integers(min_value=3, max_value=15))
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_random(self, seed, n):
        tree = Tree.random_topology(n, np.random.default_rng(seed))
        assert parse_newick(tree.newick()).newick() == tree.newick()


def _leafset(node):
    out = []
    stack = [node]
    while stack:
        x = stack.pop()
        if x.is_leaf:
            out.append(x)
        stack.extend(x.children)
    return out


class TestModelFit:
    def test_golden_section_finds_parabola_max(self):
        x, fx = golden_section_maximize(lambda x: -(x - 2.0) ** 2, 0.0, 5.0)
        assert x == pytest.approx(2.0, abs=1e-2)
        assert fx == pytest.approx(0.0, abs=1e-3)

    def test_golden_section_validation(self):
        with pytest.raises(ValueError):
            golden_section_maximize(lambda x: x, 1.0, 1.0)
        with pytest.raises(ValueError):
            golden_section_maximize(lambda x: x, 0.0, 1.0, tolerance=0.0)

    def test_kappa_recovery(self):
        freqs = (0.3, 0.2, 0.2, 0.3)
        aln = synthesize_alignment(12, 2000, seed=6, kappa=4.0,
                                   frequencies=freqs)
        from repro.phylo import jc_distance_matrix, neighbor_joining
        tree = neighbor_joining(jc_distance_matrix(aln))
        eng = LikelihoodEngine(aln, hky(freqs, 2.0), 1)
        eng.optimize_branches(tree)
        kappa, ll = optimize_kappa(aln, tree, freqs)
        assert 3.0 < kappa < 5.2
        assert ll >= eng.evaluate(tree) - 1e-6  # at least as good as k=2

    def test_alpha_estimate_in_bounds(self):
        aln = synthesize_alignment(8, 300, seed=7)
        tree = neighbor_joining(jc_distance_matrix(aln))
        alpha, ll = optimize_alpha(aln, tree, jc69(), n_rate_categories=4)
        assert 0.05 <= alpha <= 10.0
        assert np.isfinite(ll)
