"""Tests for the fleet resilience layer (src/repro/serve).

Acceptance surface of the resilience PR: the extended fault taxonomy
(slow, flap, degrade) round-trips through JSON and validates its
entries, every fault kind leaves the digest map bit-identical to the
fault-free run with zero lost jobs, hedged dispatch fires on
stragglers and the first completion wins, the circuit breaker walks
its legal state machine and completes open -> half-open -> closed
cycles, deadline enforcement sheds with exact conservation, and the
seeded chaos harness passes its invariants deterministically.
"""

import pytest

from repro.serve import (
    BladeFlap,
    BladeKill,
    BladeSlow,
    ChaosConfig,
    FleetFaultPlan,
    JobTemplate,
    LinkDegrade,
    ResilienceConfig,
    ServeConfig,
    TenantSpec,
    chaos_tenants,
    count_breaker_cycles,
    random_fleet_fault_plan,
    run_chaos,
    run_service,
)
from repro.serve.resilience import LEGAL_BREAKER_TRANSITIONS, transitions_legal
from repro.sim.trace import Tracer

SMALL = JobTemplate("small", bootstraps=2, tasks_per_bootstrap=60, variants=2)


def open_loop_tenants(rate=0.1):
    """Open-loop only, so full digest-map equality is a valid assert."""
    return (
        TenantSpec("alpha", SMALL, arrival="poisson", arrival_rate=rate,
                   priority=1, deadline_s=900.0),
        TenantSpec("beta", SMALL, arrival="bursty", burst_size=3,
                   burst_interval_s=300.0),
    )


def base_config(**overrides):
    base = dict(
        tenants=open_loop_tenants(rate=0.1),
        duration_s=900.0, seed=9,
        min_blades=3, max_blades=3, dispatch="least-loaded",
    )
    base.update(overrides)
    return ServeConfig(**base)


# -- fault-plan taxonomy ------------------------------------------------------

class TestFaultTaxonomy:
    def test_full_plan_json_roundtrip(self):
        plan = FleetFaultPlan(
            kills=(BladeKill(blade=0, at=50.0),),
            slows=(BladeSlow(blade=1, at=10.0, factor=2.0, jitter=0.1,
                             duration=100.0),),
            flaps=(BladeFlap(blade=2, at=20.0, down_s=30.0),),
            degrades=(LinkDegrade(blade=3, at=5.0, added_latency_s=1.0),),
            seed=7,
        )
        assert FleetFaultPlan.from_json(plan.to_json()) == plan
        assert plan.blades == (0, 1, 2, 3)
        assert not plan.is_null

    def test_unknown_kind_names_known_kinds(self):
        with pytest.raises(ValueError) as exc:
            FleetFaultPlan.from_json('{"bogus": []}')
        msg = str(exc.value)
        for kind in ("kills", "slows", "flaps", "degrades"):
            assert kind in msg

    def test_entry_validation(self):
        with pytest.raises(ValueError):
            BladeSlow(blade=0, at=0.0, factor=0.5)   # speed-ups not faults
        with pytest.raises(ValueError):
            BladeFlap(blade=0, at=0.0, down_s=-1.0)
        with pytest.raises(ValueError):
            LinkDegrade(blade=0, at=0.0, added_latency_s=-1.0)

    def test_plan_outside_fleet_rejected(self):
        with pytest.raises(ValueError):
            base_config(faults=FleetFaultPlan(
                slows=(BladeSlow(blade=7, at=10.0, factor=2.0),)))


# -- straggler (BladeSlow) ----------------------------------------------------

class TestStraggler:
    def test_slow_stretches_timeline_not_results(self):
        clean = run_service(base_config())
        faulty = run_service(base_config(
            faults=FleetFaultPlan(
                slows=(BladeSlow(blade=0, at=100.0, factor=4.0),)),
        ))
        assert faulty.summary["lost"] == 0
        assert faulty.summary["completed"] == clean.summary["completed"]
        # A 4x straggler visibly inflates the tail...
        assert (faulty.summary["latency_p99_s"]
                > clean.summary["latency_p99_s"])
        # ...but changes no result bits.
        assert faulty.digest_map() == clean.digest_map()


# -- hedged dispatch ----------------------------------------------------------

class TestHedging:
    def test_hedge_fires_and_first_completion_wins(self):
        tracer = Tracer(enabled=True)
        clean = run_service(base_config())
        faulty = run_service(base_config(
            faults=FleetFaultPlan(
                slows=(BladeSlow(blade=0, at=100.0, factor=6.0),)),
            resilience=ResilienceConfig(hedging=True, breaker=True),
        ), tracer=tracer)
        s = faulty.summary
        assert s["hedges"] > 0
        assert s["hedge_wins"] > 0          # copies actually beat stragglers
        assert s["lost"] == 0
        # Dedup: a job run twice completes exactly once, digests intact.
        assert s["completed"] == clean.summary["completed"]
        assert faulty.digest_map() == clean.digest_map()
        # The losing twin was cancelled, not silently dropped.
        assert tracer.filter(category="serve", event="hedge")
        assert tracer.filter(category="serve", event="hedge-cancel")


# -- circuit breaker ----------------------------------------------------------

class TestBreaker:
    def test_full_cycle_on_recovering_straggler(self):
        faulty = run_service(base_config(
            faults=FleetFaultPlan(
                slows=(BladeSlow(blade=0, at=100.0, factor=4.0,
                                 duration=250.0),)),
            resilience=ResilienceConfig(breaker=True),
        ))
        s = faulty.summary
        assert s["breaker_opens"] > 0
        assert s["breaker_closes"] > 0      # the probe measured healthy
        assert count_breaker_cycles(faulty.breaker_transitions) >= 1
        assert transitions_legal(faulty.breaker_transitions)
        assert s["lost"] == 0

    def test_transition_helpers(self):
        cycle = (
            (10.0, 0, "closed", "open", "ewma-ratio 2.5"),
            (20.0, 0, "open", "half-open", "cooldown"),
            (30.0, 0, "half-open", "closed", "probe-healthy"),
        )
        assert transitions_legal(cycle)
        assert count_breaker_cycles(cycle) == 1
        bad = ((10.0, 0, "open", "closed", "nope"),)
        assert not transitions_legal(bad)
        assert ("open", "closed") not in LEGAL_BREAKER_TRANSITIONS
        # A cycle that re-opens from half-open never completes.
        flappy = (
            (10.0, 0, "closed", "open", "ewma-ratio 2.5"),
            (20.0, 0, "open", "half-open", "cooldown"),
            (30.0, 0, "half-open", "open", "probe-slow"),
        )
        assert count_breaker_cycles(flappy) == 0


# -- flap (crash + rejoin) ----------------------------------------------------

class TestFlap:
    def test_flap_requeues_then_rejoins(self):
        clean = run_service(base_config())
        faulty = run_service(base_config(
            faults=FleetFaultPlan(
                flaps=(BladeFlap(blade=1, at=300.0, down_s=200.0),)),
            resilience=ResilienceConfig(breaker=True),
        ))
        s = faulty.summary
        assert s["blade_crashes"] == 1
        assert s["blade_rejoins"] == 1
        assert s["failovers"] > 0           # in-flight work was requeued
        assert s["lost"] == 0
        assert faulty.per_blade[1]["alive"]  # it came back
        assert faulty.digest_map() == clean.digest_map()


# -- link degrade -------------------------------------------------------------

class TestLinkDegrade:
    def test_degrade_adds_latency_not_loss(self):
        clean = run_service(base_config())
        faulty = run_service(base_config(
            faults=FleetFaultPlan(
                degrades=(LinkDegrade(blade=0, at=100.0,
                                      added_latency_s=5.0),)),
        ))
        assert (faulty.summary["latency_p99_s"]
                > clean.summary["latency_p99_s"])
        assert faulty.summary["lost"] == 0
        assert faulty.digest_map() == clean.digest_map()


# -- deadline enforcement -----------------------------------------------------

class TestDeadlineEnforcement:
    def test_sheds_unreachable_with_exact_conservation(self):
        cfg = ServeConfig(
            tenants=(TenantSpec("dl", SMALL, arrival="poisson",
                                arrival_rate=0.08, deadline_s=120.0),),
            duration_s=900.0, seed=5,
            min_blades=2, max_blades=2, dispatch="least-loaded",
            queue_capacity=4096,
            faults=FleetFaultPlan(
                slows=(BladeSlow(blade=0, at=100.0, factor=4.0),)),
            resilience=ResilienceConfig(enforce_deadlines=True),
        )
        tracer = Tracer(enabled=True)
        r = run_service(cfg, tracer=tracer)
        s = r.summary
        assert s["deadline_aborts"] > 0
        # Every admitted job is accounted for exactly once.
        assert s["admitted"] == (s["completed"] + s["deadline_aborts"]
                                 + s["lost"])
        assert tracer.filter(category="serve", event="deadline-abort")


# -- chaos harness ------------------------------------------------------------

class TestChaos:
    def test_random_plan_is_seeded_and_in_bounds(self):
        p1 = random_fleet_fault_plan(3, 4, 2400.0, "storm")
        p2 = random_fleet_fault_plan(3, 4, 2400.0, "storm")
        assert p1 == p2                      # same seed, same plan
        assert p1 != random_fleet_fault_plan(4, 4, 2400.0, "storm")
        assert not p1.is_null
        assert all(0 <= b < 4 for b in p1.blades)

    def test_small_soak_passes_and_is_deterministic(self):
        cfg = ChaosConfig(plans=2, seed=1, duration_s=1200.0)
        rep1 = run_chaos(cfg)
        rep2 = run_chaos(cfg)
        assert rep1.ok, [o.violations for o in rep1.failures]
        assert not rep1.failures
        for out in rep1.outcomes:
            assert out.lost == 0
        assert rep1.to_json() == rep2.to_json()
        assert "verdict: PASS" in rep1.summary_text()

    def test_chaos_tenants_are_open_loop_only(self):
        # Closed-loop tenants would invalidate digest-map equality.
        assert all(t.arrival != "closed" for t in chaos_tenants())
