"""Pins the calibrated constants documented in DESIGN.md section 8.

If a future change shifts one of these, the paper-anchor tests will
usually catch the *symptom*; this module catches the *cause* and points
at the documentation that must be updated alongside.
"""

import pytest

from repro.cell.params import BladeParams, CellParams
from repro.core.llp import LLPConfig
from repro.platforms import POWER5, XEON_2X_HT
from repro.workloads import RAXML_42SC


def test_hardware_constants_from_the_paper():
    p = CellParams()
    assert p.clock_hz == 3.2e9
    assert p.n_spes == 8
    assert p.ppe_smt_contexts == 2
    assert p.context_switch == pytest.approx(1.5e-6)   # Section 5.2
    assert p.os_quantum == pytest.approx(10e-3)        # Section 5.2
    assert p.local_store_size == 256 * 1024            # Section 4
    assert p.dma_max_request == 16 * 1024              # Section 4
    assert p.dma_list_max == 2048                      # Section 4
    assert p.eib_bandwidth == pytest.approx(204.8 * 1024**3)  # Section 4


def test_calibrated_constants_match_design_md():
    p = CellParams()
    assert p.smt_efficiency == pytest.approx(0.45)
    assert p.spin_contention == pytest.approx(0.2)
    assert p.memory_contention_quadratic == pytest.approx(0.008)
    assert p.memory_contention_cap == pytest.approx(0.50)
    cfg = LLPConfig()
    assert cfg.signal_issue == pytest.approx(0.5e-6)
    assert cfg.pass_process == pytest.approx(2.75e-6)
    assert cfg.setup == pytest.approx(2.0e-6)


def test_profile_constants_from_the_paper():
    p = RAXML_42SC
    assert p.taxa == 42 and p.sites == 1167
    assert p.ppe_only_seconds == 38.23
    assert p.naive_offload_seconds == 50.38
    assert p.optimized_seconds == 28.46
    assert p.spe_fraction == 0.90
    assert p.mean_task_us == 96.0
    assert p.mean_gap_us == 11.0
    assert p.loop_iterations == 228
    assert p.code_image_kb == 117


def test_platform_calibration():
    assert XEON_2X_HT.bootstrap_seconds == pytest.approx(46.0)
    assert XEON_2X_HT.smt_throughput == (1.0, 1.25)
    assert POWER5.bootstrap_seconds == pytest.approx(14.0)
    assert POWER5.smt_throughput == (1.0, 1.35)


def test_blade_defaults():
    b = BladeParams()
    assert b.n_cells == 1
    assert BladeParams(n_cells=2).total_spes == 16
