"""Tests of the off-load runtimes: EDTLP blocking, Linux spinning, LLP
worker acquisition, code replacement, MGPS adaptation mechanics."""

import pytest

from repro.cell.machine import CellMachine
from repro.cell.params import BladeParams, CellParams
from repro.core.runtime import (
    EDTLPRuntime,
    LinuxRuntime,
    MGPSRuntime,
    ProcContext,
    StaticHybridRuntime,
)
from repro.mpi.master_worker import WorkDispenser
from repro.mpi.process import mpi_worker
from repro.sim.engine import Environment
from repro.workloads.synthetic import fine_grained_trace, uniform_trace
from repro.workloads.traces import Workload

US = 1e-6


class _OneTraceWorkload:
    """Minimal workload wrapper around a fixed trace (test double)."""

    def __init__(self, trace, copies=1):
        self._trace = trace
        self.bootstraps = copies
        self.tasks_per_bootstrap = trace.n_tasks

    def trace(self, index):
        return self._trace

    @property
    def scale(self):
        return self._trace.scale


def build(runtime_cls, blade=None, trace=None, n_procs=1, copies=None, **kw):
    env = Environment()
    machine = CellMachine(env, blade or BladeParams())
    runtime = runtime_cls(env, machine, **kw)
    trace = trace if trace is not None else uniform_trace(n_tasks=30)
    wl = _OneTraceWorkload(trace, copies=copies or n_procs)
    disp = WorkDispenser(env, wl.bootstraps, n_procs)
    procs = []
    for rank in range(n_procs):
        core = machine.core_for(rank)
        affinity = (rank // len(machine.cores)) % core.n_contexts \
            if runtime_cls is LinuxRuntime else None
        ctx = ProcContext(
            rank=rank,
            cell_id=rank % len(machine.cores),
            thread=core.thread(f"mpi{rank}", affinity=affinity),
        )
        if runtime_cls is LinuxRuntime:
            ctx.pinned_spe = machine.spes[rank % machine.n_spes]
        procs.append(env.process(mpi_worker(ctx, runtime, disp, wl)))
    env.run_until_complete(env.all_of(procs))
    return env, machine, runtime


def test_edtlp_offloads_every_task():
    env, machine, rt = build(EDTLPRuntime)
    assert rt.stats.offloads == 30
    assert rt.stats.ppe_fallbacks == 0
    assert sum(s.tasks_executed for s in machine.spes) == 30


def test_edtlp_makespan_accounts_tasks_and_gaps():
    trace = uniform_trace(n_tasks=20, spe_us=100, gap_us=10)
    env, machine, rt = build(EDTLPRuntime, trace=trace)
    # 20 x (10 gap + ~100 task + small overheads) plus tail.
    assert 20 * 110 * US < env.now < 20 * 130 * US


def test_linux_requires_pinned_spe():
    env = Environment()
    machine = CellMachine(env)
    rt = LinuxRuntime(env, machine)
    ctx = ProcContext(rank=0, cell_id=0, thread=machine.cores[0].thread("t"))
    trace = uniform_trace(n_tasks=1)
    gen = rt.offload(ctx, trace.items[0].task, trace)
    with pytest.raises(RuntimeError, match="pinned"):
        # Drive the generator; the error fires at the first step.
        ev = next(gen)


def test_linux_uses_only_pinned_spes():
    env, machine, rt = build(LinuxRuntime, n_procs=2)
    used = [s for s in machine.spes if s.tasks_executed > 0]
    assert len(used) == 2


def test_fine_tasks_fall_back_to_ppe():
    trace = fine_grained_trace(n_tasks=40)
    env, machine, rt = build(EDTLPRuntime, trace=trace)
    # First off-load is optimistic; nearly everything after is throttled
    # (modulo periodic reprobes).
    assert rt.stats.ppe_fallbacks >= 30
    assert rt.granularity.throttled >= 30


def test_granularity_disabled_never_falls_back():
    trace = fine_grained_trace(n_tasks=40)
    env, machine, rt = build(
        EDTLPRuntime, trace=trace, granularity_enabled=False
    )
    assert rt.stats.ppe_fallbacks == 0


def test_offload_disabled_runs_everything_on_ppe():
    env, machine, rt = build(EDTLPRuntime, offload_enabled=False)
    assert rt.stats.offloads == 0
    assert rt.stats.ppe_fallbacks == 30
    assert all(s.tasks_executed == 0 for s in machine.spes)


def test_naive_mode_is_slower():
    t_opt = build(EDTLPRuntime, optimized=True)[0].now
    t_naive = build(
        EDTLPRuntime, optimized=False, granularity_enabled=False
    )[0].now
    assert t_naive > 1.5 * t_opt


def test_static_hybrid_acquires_workers():
    env, machine, rt = build(StaticHybridRuntime, degree=4)
    assert rt.stats.llp_invocations == 30
    # Master + 3 workers busy during each task.
    busy_spes = [s for s in machine.spes if s.busy_seconds > 0]
    assert len(busy_spes) == 4


def test_static_hybrid_loads_llp_image():
    env, machine, rt = build(StaticHybridRuntime, degree=2)
    images = {s.code_image.variant for s in machine.spes if s.code_image}
    assert images == {"llp"}


def test_llp_worker_seconds_accounted():
    env, machine, rt = build(StaticHybridRuntime, degree=4)
    assert rt.stats.llp_worker_seconds > 0


def test_mgps_starts_in_edtlp_mode():
    env = Environment()
    machine = CellMachine(env)
    rt = MGPSRuntime(env, machine)
    assert not rt.llp_active
    ctx = ProcContext(rank=0, cell_id=0, thread=machine.cores[0].thread("t"))
    assert rt.llp_degree(ctx) == 1


def test_mgps_activates_llp_for_single_source():
    env, machine, rt = build(MGPSRuntime, n_procs=1)
    assert rt.stats.llp_invocations > 0
    assert rt.llp_active


def test_mgps_stays_edtlp_with_many_sources():
    trace = uniform_trace(n_tasks=40)
    env, machine, rt = build(MGPSRuntime, n_procs=8, trace=trace)
    # With 8 task sources U stays high: no LLP.
    assert rt.stats.llp_invocations <= rt.stats.offloads * 0.05


def test_mgps_mode_switch_replaces_code_images():
    env, machine, rt = build(MGPSRuntime, n_procs=1)
    # Bootstrapping with one source: serial image first (EDTLP start),
    # then the LLP variant after adaptation -> at least 2 code loads.
    assert rt.stats.code_loads >= 2


def test_mgps_staleness_resets_history():
    from repro.workloads.synthetic import bursty_trace

    trace = bursty_trace(n_bursts=4, burst_len=10, quiet_us=50_000)
    env, machine, rt = build(MGPSRuntime, n_procs=1, trace=trace,
                             staleness=20e-3)
    # The runtime survives the droughts and completes all tasks.
    assert rt.stats.offloads + rt.stats.ppe_fallbacks == 40


def test_completion_signal_latency_in_cycle():
    cell = CellParams(ppe_spe_signal=5.0 * US)
    blade = BladeParams(cell=cell)
    trace = uniform_trace(n_tasks=10, spe_us=100, gap_us=10)
    slow = build(EDTLPRuntime, blade=blade, trace=trace)[0].now
    fast = build(EDTLPRuntime, trace=trace)[0].now
    # Two signals per off-load, ~4.65 us extra each -> ~93 us total.
    assert slow - fast == pytest.approx(10 * 2 * 4.65 * US, rel=0.15)


def test_active_sources_tracking():
    env = Environment()
    machine = CellMachine(env)
    rt = EDTLPRuntime(env, machine)
    ctx = ProcContext(rank=0, cell_id=0, thread=machine.cores[0].thread("t"))
    rt.note_bootstrap_start(ctx, 0)
    assert rt.active_sources == 1
    rt.note_bootstrap_end(ctx, 0)
    assert rt.active_sources == 0
    assert rt.stats.bootstraps_done == 1
