"""Tests for gap handling and the amino-acid (20-state) path."""

import itertools

import numpy as np
import pytest

from repro.phylo import (
    Alignment,
    DNA,
    LikelihoodEngine,
    PROTEIN,
    Tree,
    hky,
    jc69,
    jc_distance_matrix,
    neighbor_joining,
    p_distance_matrix,
    protein_poisson,
    synthesize_alignment,
)


class TestAlphabets:
    def test_dna_codes(self):
        assert DNA.n_states == 4
        assert DNA.encode("a") == 0
        assert DNA.encode("T") == 3
        assert DNA.encode("N") == DNA.gap_code
        assert DNA.encode("-") == DNA.gap_code
        assert DNA.decode(2) == "G"
        assert DNA.decode(DNA.gap_code) == "-"
        with pytest.raises(ValueError):
            DNA.encode("1")

    def test_protein_codes(self):
        assert PROTEIN.n_states == 20
        assert PROTEIN.encode("A") == 0
        assert PROTEIN.encode("V") == 19
        assert PROTEIN.encode("X") == PROTEIN.gap_code
        with pytest.raises(ValueError):
            PROTEIN.encode("1")

    def test_alphabet_letter_uniqueness_enforced(self):
        from repro.phylo.alignment import Alphabet
        with pytest.raises(ValueError):
            Alphabet("bad", "AAC", "")


class TestGaps:
    def test_gap_fraction_accounting(self):
        aln = Alignment.from_sequences(["a", "b"], ["AC-T", "A-GT"])
        assert aln.gap_fraction == pytest.approx(2 / 8)

    def test_gap_roundtrip(self):
        seqs = ["AC-T", "A?GN"]
        aln = Alignment.from_sequences(["a", "b"], seqs)
        rec = aln.to_sequences()
        # '?' and 'N' both decode to '-'.
        assert sorted("".join(rec)) == sorted("AC-TA-G-")

    def test_gap_is_missing_data_in_likelihood(self):
        """A fully gapped taxon contributes nothing: the likelihood
        equals that of the alignment without it... in the 3-taxon star
        case, adding an all-gap taxon keeps per-site likelihoods equal."""
        model = jc69()
        aln3 = Alignment.from_sequences(["a", "b", "c"], ["AC", "AG", "AT"])
        aln4 = Alignment.from_sequences(
            ["a", "b", "c", "d"], ["AC", "AG", "AT", "--"]
        )
        rng = np.random.default_rng(0)
        tree3 = Tree.random_topology(3, rng)
        # 4-taxon tree: attach the gap taxon anywhere.
        tree4 = Tree.random_topology(4, np.random.default_rng(1))
        l3 = LikelihoodEngine(aln3, model, 1).evaluate(tree3)
        l4 = LikelihoodEngine(aln4, model, 1).evaluate(tree4)
        # Not exactly equal (different topologies/branches for observed
        # taxa), but the gap taxon itself cannot push likelihood to 0.
        assert np.isfinite(l4)
        # Direct check: gap tip vector contributes a factor of 1:
        eng = LikelihoodEngine(aln4, model, 1)
        assert np.allclose(eng._tip_clv[3], 1.0)

    def test_gapped_likelihood_matches_brute_force(self):
        from tests.test_phylo_core import brute_force_loglik

        model = hky((0.3, 0.2, 0.2, 0.3), 2.0)
        aln = Alignment.from_sequences(
            ["a", "b", "c", "d"], ["AC-T", "ACG-", "G-GT", "GTGA"]
        )
        tree = Tree.random_topology(4, np.random.default_rng(2))

        # Brute force with marginalization over gap states.
        def brute_with_gaps():
            nodes = tree.nodes()
            internals = [n for n in nodes if not n.is_leaf]
            total = 0.0
            pm = {
                n.id: model.transition_matrix(n.length)
                for n in nodes if n.parent is not None
            }
            for pat, w in zip(aln.patterns.T, aln.weights):
                lik = 0.0
                leaf_states = {}
                for leaf in tree.leaves():
                    code = pat[leaf.taxon]
                    leaf_states[leaf.id] = (
                        range(4) if code == DNA.gap_code else [code]
                    )
                leaf_ids = [l.id for l in tree.leaves()]
                for internal_states in itertools.product(
                    range(4), repeat=len(internals)
                ):
                    sdict = {
                        n.id: s for n, s in zip(internals, internal_states)
                    }
                    for combo in itertools.product(
                        *(leaf_states[i] for i in leaf_ids)
                    ):
                        for lid, s in zip(leaf_ids, combo):
                            sdict[lid] = s
                        p = model.frequencies[sdict[tree.root.id]]
                        for n in nodes:
                            if n.parent is not None:
                                p *= pm[n.id][sdict[n.parent.id], sdict[n.id]]
                        lik += p
                total += w * np.log(lik)
            return total

        eng = LikelihoodEngine(aln, model, 1)
        assert eng.evaluate(tree) == pytest.approx(brute_with_gaps())

    def test_synthesize_with_gaps(self):
        aln = synthesize_alignment(6, 200, seed=0, gap_fraction=0.15)
        assert 0.10 < aln.gap_fraction < 0.20
        # Inference still works.
        tree = neighbor_joining(jc_distance_matrix(aln))
        ll = LikelihoodEngine(aln, jc69(), 1).evaluate(tree)
        assert np.isfinite(ll)

    def test_gaps_excluded_from_distances(self):
        aln = Alignment.from_sequences(["a", "b"], ["ACGT--", "ACGA--"])
        # 4 comparable sites, 1 differing.
        assert p_distance_matrix(aln)[0, 1] == pytest.approx(0.25)


class TestProtein:
    def _protein_alignment(self):
        seqs = [
            "ARNDCQEGHILK",
            "ARNDCQEGHILM",
            "GRNDCQEGHILK",
            "GRNECQEGHILM",
        ]
        return Alignment.from_sequences(
            ["a", "b", "c", "d"], seqs, alphabet="protein"
        )

    def test_model_properties(self):
        m = protein_poisson()
        assert m.n_states == 20
        p = m.transition_matrix(0.3)
        assert p.shape == (20, 20)
        assert np.allclose(p.sum(axis=1), 1.0)
        # Detailed balance.
        flux = m.frequencies[:, None] * p
        assert np.allclose(flux, flux.T)

    def test_protein_likelihood_runs(self):
        aln = self._protein_alignment()
        tree = Tree.random_topology(4, np.random.default_rng(0))
        eng = LikelihoodEngine(aln, protein_poisson(), 2)
        ll = eng.evaluate(tree)
        assert np.isfinite(ll) and ll < 0

    def test_protein_brute_force_equivalence(self):
        """Pruning == exhaustive enumeration on a 3-taxon protein star."""
        aln = Alignment.from_sequences(
            ["a", "b", "c"], ["AR", "AK", "GR"], alphabet="protein"
        )
        model = protein_poisson()
        tree = Tree.random_topology(3, np.random.default_rng(1))
        eng = LikelihoodEngine(aln, model, 1)
        got = eng.evaluate(tree)

        # Star tree: one internal node (the root).
        pm = {
            n.id: model.transition_matrix(n.length)
            for n in tree.nodes() if n.parent is not None
        }
        total = 0.0
        for pat, w in zip(aln.patterns.T, aln.weights):
            lik = 0.0
            for root_state in range(20):
                p = model.frequencies[root_state]
                for leaf in tree.leaves():
                    p *= pm[leaf.id][root_state, pat[leaf.taxon]]
                lik += p
            total += w * np.log(lik)
        assert got == pytest.approx(total)

    def test_protein_makenewz_improves(self):
        aln = self._protein_alignment()
        tree = Tree.random_topology(4, np.random.default_rng(2))
        eng = LikelihoodEngine(aln, protein_poisson(), 1)
        before = eng.evaluate(tree)
        eng.full_traversal(tree)
        eng.makenewz(tree, tree.branches()[0])
        after = eng.evaluate(tree, full=True)
        assert after >= before - 1e-9

    def test_protein_distances_and_nj(self):
        aln = self._protein_alignment()
        d = jc_distance_matrix(aln)
        assert d.shape == (4, 4)
        assert np.all(np.isfinite(d))
        tree = neighbor_joining(d)
        assert sorted(l.taxon for l in tree.leaves()) == [0, 1, 2, 3]

    def test_model_alignment_mismatch_rejected(self):
        aln = self._protein_alignment()
        with pytest.raises(ValueError, match="states"):
            LikelihoodEngine(aln, jc69(), 1)
