"""End-to-end smoke tests: every example must run and tell its story."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "EDTLP" in out
    assert "speedup" in out


def test_scheduler_comparison():
    out = run_example("scheduler_comparison.py")
    assert "MGPS" in out
    assert "crossover" in out.lower() or "stops beating" in out


def test_multicell_scaling():
    out = run_example("multicell_scaling.py")
    assert "two Cells" in out


def test_platform_comparison():
    out = run_example("platform_comparison.py")
    assert "Power5" in out and "Xeon" in out


def test_schedule_timeline():
    out = run_example("schedule_timeline.py")
    assert "SPE timeline" in out
    assert out.count("|") > 20  # drew the rows


def test_hybrid_mpi_workload():
    out = run_example("hybrid_mpi_workload.py")
    assert "straggler" in out


@pytest.mark.slow
def test_raxml_bootstrap_analysis():
    out = run_example("raxml_bootstrap_analysis.py")
    assert "log-likelihood" in out
    assert "EDTLP" in out and "MGPS" in out


def test_custom_policy():
    out = run_example("custom_policy.py")
    assert "greedy" in out.lower()
    assert "MGPS" in out


def test_cellsdk_by_hand():
    out = run_example("cellsdk_by_hand.py")
    assert "Hand-rolled" in out
    assert "EDTLP runtime" in out
