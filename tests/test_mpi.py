"""Tests for the simulated-MPI substrate."""

import pytest

from repro.mpi import SimComm, WorkDispenser
from repro.sim import Environment


class TestSimComm:
    def test_send_recv_roundtrip(self):
        env = Environment()
        comm = SimComm(env, size=2, latency=1e-6)

        def sender():
            yield from comm.send({"x": 1}, dest=1)

        def receiver():
            msg = yield comm.recv_at(1)
            return (env.now, msg)

        env.process(sender())
        p = env.process(receiver())
        t, msg = env.run_until_complete(p)
        assert msg == {"x": 1}
        assert t == pytest.approx(1e-6)

    def test_isend_does_not_block(self):
        env = Environment()
        comm = SimComm(env, size=2, latency=1e-6)
        comm.isend("payload", dest=1)

        def receiver():
            return (yield comm.recv_at(1))

        assert env.run_until_complete(env.process(receiver())) == "payload"

    def test_message_order_preserved(self):
        env = Environment()
        comm = SimComm(env, size=2, latency=0.0)
        got = []

        def sender():
            yield from comm.send(1, dest=1)
            yield from comm.send(2, dest=1)

        def receiver():
            got.append((yield comm.recv_at(1)))
            got.append((yield comm.recv_at(1)))

        env.process(sender())
        env.process(receiver())
        env.run()
        assert got == [1, 2]

    def test_tags_are_separate_mailboxes(self):
        env = Environment()
        comm = SimComm(env, size=1, latency=0.0)
        comm.isend("a", dest=0, tag=1)
        comm.isend("b", dest=0, tag=2)

        def receiver():
            b = yield comm.recv_at(0, tag=2)
            a = yield comm.recv_at(0, tag=1)
            return (a, b)

        assert env.run_until_complete(env.process(receiver())) == ("a", "b")

    def test_bcast_reaches_all_ranks(self):
        env = Environment()
        comm = SimComm(env, size=3, latency=0.0)
        comm.bcast("hello")
        got = []

        def receiver(rank):
            got.append((rank, (yield comm.recv_at(rank))))

        for r in range(3):
            env.process(receiver(r))
        env.run()
        assert sorted(got) == [(0, "hello"), (1, "hello"), (2, "hello")]

    def test_rank_bounds_checked(self):
        env = Environment()
        comm = SimComm(env, size=2)
        with pytest.raises(ValueError):
            comm.isend("x", dest=2)
        with pytest.raises(ValueError):
            comm.recv_at(-1)

    def test_invalid_construction(self):
        env = Environment()
        with pytest.raises(ValueError):
            SimComm(env, size=0)
        with pytest.raises(ValueError):
            SimComm(env, size=1, latency=-1)


class TestWorkDispenser:
    def test_items_then_sentinels(self):
        env = Environment()
        d = WorkDispenser(env, n_items=3, n_workers=2)
        got = []

        def worker(name):
            while True:
                item = yield d.get()
                if item is None:
                    return
                got.append((name, item))

        p1 = env.process(worker("a"))
        p2 = env.process(worker("b"))
        env.run_until_complete(env.all_of([p1, p2]))
        assert sorted(i for _, i in got) == [0, 1, 2]
        assert d.items_dispensed == 3

    def test_every_worker_stops(self):
        env = Environment()
        d = WorkDispenser(env, n_items=1, n_workers=4)
        done = []

        def worker(i):
            while True:
                item = yield d.get()
                if item is None:
                    done.append(i)
                    return

        procs = [env.process(worker(i)) for i in range(4)]
        env.run_until_complete(env.all_of(procs))
        assert sorted(done) == [0, 1, 2, 3]

    def test_remaining_counts_work_only(self):
        env = Environment()
        d = WorkDispenser(env, n_items=5, n_workers=2)
        assert d.remaining == 5

    def test_validation(self):
        env = Environment()
        with pytest.raises(ValueError):
            WorkDispenser(env, n_items=0, n_workers=1)
        with pytest.raises(ValueError):
            WorkDispenser(env, n_items=1, n_workers=0)
