"""Tests for the loop-level parallelism model (work sharing, adaptive
unbalancing, Table 2 shape)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cell import CellParams
from repro.core.llp import LLPConfig, LoopParallelModel, split_iterations
from repro.workloads.taskspec import LoopSpec, TaskSpec

US = 1e-6


def make_task(
    spe_us=96.0,
    coverage=0.7,
    iterations=228,
    reduction=True,
    function="newview",
):
    return TaskSpec(
        function=function,
        spe_time=spe_us * US,
        ppe_time=1.38 * spe_us * US,
        naive_spe_time=1.85 * spe_us * US,
        loop=LoopSpec(
            iterations=iterations,
            coverage=coverage,
            reduction=reduction,
            bytes_per_iteration=144,
        ),
    )


class TestSplitIterations:
    def test_equal_split(self):
        assert split_iterations(100, 4, 0.25) == [25, 25, 25, 25]

    def test_master_fraction_respected(self):
        chunks = split_iterations(100, 4, 0.40)
        assert chunks[0] == 40
        assert sum(chunks) == 100

    def test_everyone_gets_at_least_one(self):
        chunks = split_iterations(10, 10, 0.9)
        assert all(c >= 1 for c in chunks)
        assert sum(chunks) == 10

    def test_k_exceeding_n_rejected(self):
        with pytest.raises(ValueError):
            split_iterations(3, 4, 0.25)

    def test_single_spe(self):
        # k == 1 takes the whole loop regardless of the fraction, so the
        # fraction is not validated on that path.
        assert split_iterations(228, 1, 1.0) == [228]

    def test_fraction_out_of_range_rejected(self):
        for bad in (-0.1, 1.0, 1.5):
            with pytest.raises(ValueError, match=r"master_fraction"):
                split_iterations(100, 4, bad)

    def test_k_exceeding_n_message_names_empty_chunks(self):
        with pytest.raises(ValueError, match=r"empty chunks"):
            split_iterations(3, 4, 0.25)

    @given(
        n=st.integers(min_value=1, max_value=5000),
        k=st.integers(min_value=1, max_value=16),
        f=st.floats(min_value=0.0, max_value=1.0, exclude_max=True),
    )
    @settings(max_examples=300, deadline=None)
    def test_split_properties(self, n, k, f):
        if k > n:
            with pytest.raises(ValueError):
                split_iterations(n, k, f)
            return
        chunks = split_iterations(n, k, f)
        assert len(chunks) == k
        assert sum(chunks) == n
        assert all(c >= 1 for c in chunks)
        # Worker chunks are balanced within 1 iteration.
        if k > 1:
            workers = chunks[1:]
            assert max(workers) - min(workers) <= 1


class TestLLPConfig:
    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            LLPConfig(alpha=1.5)
        with pytest.raises(ValueError):
            LLPConfig(signal_issue=-1.0)


class TestInvocation:
    def setup_method(self):
        self.model = LoopParallelModel(CellParams())

    def test_k1_returns_serial_time(self):
        task = make_task()
        inv = self.model.invoke(task, 1)
        assert inv.duration == pytest.approx(task.spe_time)
        assert inv.k == 1

    def test_parallel_faster_than_serial_at_small_k(self):
        task = make_task()
        t1 = self.model.invoke(task, 1).duration
        t2 = self.model.invoke(task, 2).duration
        t4 = self.model.invoke(task, 4).duration
        assert t2 < t1
        assert t4 < t2

    def test_overheads_dominate_at_large_k(self):
        # The Table 2 shape: efficiency degrades past ~5 SPEs.
        task = make_task()
        times = {k: self.model.invoke(task, k).duration for k in range(1, 9)}
        best_k = min(times, key=times.get)
        assert 3 <= best_k <= 6
        assert times[8] > times[best_k]

    def test_k_clamped_to_iterations(self):
        task = make_task(iterations=3)
        inv = self.model.invoke(task, 8)
        assert inv.k == 3

    def test_zero_coverage_means_no_parallelism(self):
        task = make_task(coverage=0.0)
        inv = self.model.invoke(task, 4)
        assert inv.k == 1
        assert inv.duration == pytest.approx(task.spe_time)

    def test_reduction_costs_scale_with_workers(self):
        m = LoopParallelModel(CellParams())
        r2 = m.invoke(make_task(reduction=True), 2).reduction_time
        r8 = m.invoke(make_task(reduction=True), 8).reduction_time
        assert r8 == pytest.approx(r2 * 7)

    def test_cross_cell_workers_slow_the_join(self):
        m1 = LoopParallelModel(CellParams())
        m2 = LoopParallelModel(CellParams())
        local = m1.invoke(make_task(), 4, cross_cell_workers=0).duration
        remote = m2.invoke(make_task(), 4, cross_cell_workers=3).duration
        assert remote >= local

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            self.model.invoke(make_task(), 0)

    def test_invocation_counters(self):
        m = LoopParallelModel(CellParams())
        m.invoke(make_task(), 4)
        m.invoke(make_task(), 4)
        assert m.invocations == 2


class TestAdaptiveUnbalancing:
    def test_master_fraction_grows_above_equal_split(self):
        """Workers start late (signal + DMA), so the converged master
        fraction must exceed 1/k — the paper's 'purposeful load
        unbalancing'."""
        m = LoopParallelModel(CellParams())
        task = make_task()
        for _ in range(60):
            m.invoke(task, 4)
        assert m.master_fraction("newview", 4) > 1.0 / 4

    def test_join_idle_shrinks_with_adaptation(self):
        m = LoopParallelModel(CellParams())
        task = make_task()
        first = m.invoke(task, 4).join_idle
        for _ in range(60):
            last = m.invoke(task, 4).join_idle
        assert last <= first

    def test_adaptation_improves_duration(self):
        adaptive = LoopParallelModel(CellParams(), LLPConfig(adaptive=True))
        frozen = LoopParallelModel(CellParams(), LLPConfig(adaptive=False))
        task = make_task()
        for _ in range(60):
            t_adapt = adaptive.invoke(task, 4).duration
            t_frozen = frozen.invoke(task, 4).duration
        assert t_adapt <= t_frozen

    def test_frozen_fraction_stays_equal_split(self):
        m = LoopParallelModel(CellParams(), LLPConfig(adaptive=False))
        task = make_task()
        for _ in range(10):
            m.invoke(task, 4)
        assert m.master_fraction("newview", 4) == pytest.approx(0.25)

    def test_state_keyed_by_function_and_degree(self):
        m = LoopParallelModel(CellParams())
        for _ in range(20):
            m.invoke(make_task(function="newview"), 4)
        assert m.master_fraction("newview", 4) != pytest.approx(
            m.master_fraction("evaluate", 4)
        ) or m.master_fraction("evaluate", 4) == pytest.approx(0.25)

    def test_converged_fraction_balances_the_join(self):
        """After convergence the master and the slowest worker finish
        within ~one loop iteration of each other, and the master holds
        more than the equal share (it starts earlier)."""
        m = LoopParallelModel(CellParams())
        task = make_task()
        for _ in range(200):
            inv = m.invoke(task, 4)
        loop = task.loop
        t_iter = task.spe_time * loop.coverage / loop.iterations
        assert inv.join_idle <= 1.5 * t_iter
        f = m.master_fraction("newview", 4)
        assert 0.25 < f < 0.40

    @given(k=st.integers(min_value=2, max_value=8))
    @settings(max_examples=20, deadline=None)
    def test_join_idle_bounded_after_convergence(self, k):
        m = LoopParallelModel(CellParams())
        task = make_task()
        for _ in range(100):
            inv = m.invoke(task, k)
        # After convergence the join idle is below two iteration times.
        t_iter = task.spe_time * task.loop.coverage / task.loop.iterations
        assert inv.join_idle <= 2.5 * t_iter + 1e-9
