"""Integration tests pinning the paper's headline results.

Each test asserts a *shape* claim from the paper's evaluation (who wins,
where crossovers fall, approximate factors) against the simulation.
Tolerances are deliberately generous: the substrate is a simulator, not
the authors' blade, and EXPERIMENTS.md records the exact numbers.

These are the most expensive tests in the suite (a few seconds each).
"""

import pytest

from repro import (
    BladeParams,
    Workload,
    edtlp,
    linux,
    mgps,
    run_experiment,
    static_hybrid,
)
from repro.analysis import (
    PAPER_SEC51,
    PAPER_TABLE1_EDTLP,
    PAPER_TABLE1_LINUX,
    PAPER_TABLE2,
    sec51_offload_experiment,
    table1_experiment,
    table2_experiment,
)

TASKS = 300


@pytest.fixture(scope="module")
def table1():
    return table1_experiment(tasks_per_bootstrap=TASKS)


@pytest.fixture(scope="module")
def table2():
    return table2_experiment(tasks_per_bootstrap=TASKS)


class TestSection51:
    def test_offload_anchors(self):
        r = sec51_offload_experiment(tasks_per_bootstrap=TASKS)
        measured = dict(zip(r.xs, r.series["measured"]))
        assert measured["ppe-only"] == pytest.approx(
            PAPER_SEC51["ppe_only"], rel=0.05
        )
        assert measured["naive-offload"] == pytest.approx(
            PAPER_SEC51["naive_offload"], rel=0.05
        )
        assert measured["optimized-offload"] == pytest.approx(
            PAPER_SEC51["optimized_offload"], rel=0.05
        )

    def test_naive_offload_is_a_regression(self):
        r = sec51_offload_experiment(tasks_per_bootstrap=TASKS)
        measured = dict(zip(r.xs, r.series["measured"]))
        assert measured["naive-offload"] > measured["ppe-only"]
        # The paper's 1.32x speedup of optimized SPE code over the PPE.
        ratio = measured["ppe-only"] / measured["optimized-offload"]
        assert ratio == pytest.approx(1.32, rel=0.05)


class TestTable1:
    def test_edtlp_within_tolerance(self, table1):
        for got, want in zip(table1.series["edtlp"], PAPER_TABLE1_EDTLP):
            assert got == pytest.approx(want, rel=0.18)

    def test_linux_within_tolerance(self, table1):
        for got, want in zip(table1.series["linux"], PAPER_TABLE1_LINUX):
            assert got == pytest.approx(want, rel=0.08)

    def test_linux_stair_pattern(self, table1):
        """Adding the 2k+1-th worker roughly doubles nothing; crossing an
        even boundary adds a full serial round (ceil(w/2) behaviour)."""
        lx = table1.series["linux"]
        assert lx[2] > 1.7 * lx[1]   # 3 workers >> 2 workers
        assert lx[3] < 1.15 * lx[2]  # 4 workers ~ 3 workers
        assert lx[4] > 1.3 * lx[3]   # 5 workers >> 4 workers

    def test_edtlp_beats_linux_by_factor_2_6(self, table1):
        """The abstract's headline: 'outperforms ... by up to a factor of
        2.6'."""
        ratios = [
            l / e
            for l, e in zip(table1.series["linux"], table1.series["edtlp"])
        ]
        assert max(ratios) > 2.4

    def test_edtlp_within_1_5x_of_ideal(self, table1):
        """Section 5.2: EDTLP keeps execution within 1.5x of the constant-
        time ideal (one bootstrap per SPE)."""
        base = table1.series["edtlp"][0]
        for t in table1.series["edtlp"]:
            assert t <= 1.55 * base

    def test_edtlp_monotone_growth(self, table1):
        e = table1.series["edtlp"]
        for a, b in zip(e, e[1:]):
            assert b > a - 0.8  # small jitter allowed


class TestTable2:
    def test_values_within_tolerance(self, table2):
        # k=1..5 track the paper closely; 6-8 only loosely (the paper's
        # own k=6 and k=8 rows are anomalous, see EXPERIMENTS.md).
        for got, want in zip(table2.series["llp"][:5], PAPER_TABLE2[:5]):
            assert got == pytest.approx(want, rel=0.06)

    def test_llp_speedup_peaks_around_4_5_spes(self, table2):
        times = dict(zip(table2.xs, table2.series["llp"]))
        best_k = min(times, key=times.get)
        assert best_k in (4, 5)

    def test_max_llp_speedup_near_paper(self, table2):
        """Section 5.3: 'the maximum speedup is 1.58'."""
        times = table2.series["llp"]
        speedup = times[0] / min(times)
        assert 1.4 < speedup < 1.75

    def test_efficiency_declines_beyond_5(self, table2):
        times = dict(zip(table2.xs, table2.series["llp"]))
        assert times[8] > min(times.values())


class TestFigures7and8:
    @pytest.fixture(scope="class")
    def sweep(self):
        out = {}
        for b in (1, 2, 4, 8, 16, 32):
            wl = Workload(bootstraps=b, tasks_per_bootstrap=200)
            out[b] = {
                "edtlp": run_experiment(edtlp(), wl).makespan,
                "llp2": run_experiment(static_hybrid(2), wl).makespan,
                "llp4": run_experiment(static_hybrid(4), wl).makespan,
                "mgps": run_experiment(mgps(), wl).makespan,
            }
        return out

    def test_hybrid_beats_edtlp_up_to_4_bootstraps(self, sweep):
        for b in (1, 2, 4):
            assert min(sweep[b]["llp2"], sweep[b]["llp4"]) < sweep[b]["edtlp"]

    def test_edtlp_beats_hybrid_beyond_12(self, sweep):
        for b in (16, 32):
            assert sweep[b]["edtlp"] < sweep[b]["llp2"]
            assert sweep[b]["edtlp"] < sweep[b]["llp4"]

    def test_mgps_tracks_best_static_scheme(self, sweep):
        """Figure 8: MGPS follows the lower envelope of EDTLP and the
        static hybrids (within 10%)."""
        for b, row in sweep.items():
            best = min(row["edtlp"], row["llp2"], row["llp4"])
            assert row["mgps"] <= 1.10 * best

    def test_mgps_converges_to_edtlp_at_scale(self, sweep):
        assert sweep[32]["mgps"] == pytest.approx(
            sweep[32]["edtlp"], rel=0.05
        )

    def test_mgps_beats_plain_edtlp_at_low_tlp(self, sweep):
        assert sweep[1]["mgps"] < 0.75 * sweep[1]["edtlp"]
        assert sweep[2]["mgps"] < 0.80 * sweep[2]["edtlp"]


class TestFigure9:
    def test_two_cells_nearly_double_throughput(self):
        wl = Workload(bootstraps=16, tasks_per_bootstrap=200)
        one = run_experiment(edtlp(), wl)
        two = run_experiment(edtlp(), wl, blade=BladeParams(n_cells=2))
        assert 1.6 < one.makespan / two.makespan <= 2.2

    def test_hybrid_window_extends_to_8_bootstraps(self):
        """With 16 SPEs the hybrid outperforms EDTLP up to ~8 bootstraps
        (vs ~4 on one Cell)."""
        blade = BladeParams(n_cells=2)
        wl = Workload(bootstraps=8, tasks_per_bootstrap=200)
        hybrid = run_experiment(static_hybrid(2), wl, blade=blade)
        plain = run_experiment(edtlp(), wl, blade=blade)
        assert hybrid.makespan < plain.makespan

    def test_mgps_at_least_matches_both(self):
        blade = BladeParams(n_cells=2)
        for b in (2, 8, 16):
            wl = Workload(bootstraps=b, tasks_per_bootstrap=200)
            m = run_experiment(mgps(), wl, blade=blade).makespan
            e = run_experiment(edtlp(), wl, blade=blade).makespan
            h = run_experiment(static_hybrid(2), wl, blade=blade).makespan
            assert m <= 1.10 * min(e, h)


class TestFigure10:
    def test_cell_about_4x_faster_than_dual_xeon(self):
        from repro.platforms import XEON_2X_HT

        wl = Workload(bootstraps=16, tasks_per_bootstrap=200)
        cell = run_experiment(mgps(), wl).makespan
        xeon = XEON_2X_HT.makespan(16)
        assert 3.0 < xeon / cell < 5.0

    def test_cell_5_to_10_percent_faster_than_power5_at_scale(self):
        from repro.platforms import POWER5

        for b in (8, 16, 32):
            wl = Workload(bootstraps=b, tasks_per_bootstrap=200)
            cell = run_experiment(mgps(), wl).makespan
            p5 = POWER5.makespan(b)
            assert 1.0 < p5 / cell < 1.2

    def test_power5_competitive_below_8_bootstraps(self):
        from repro.platforms import POWER5

        wl = Workload(bootstraps=2, tasks_per_bootstrap=200)
        cell = run_experiment(mgps(), wl).makespan
        assert POWER5.makespan(2) < cell
