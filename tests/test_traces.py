"""Tests for workload profiles and trace generation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.workloads import (
    RAXML_42SC,
    RaxmlProfile,
    TraceBuilder,
    Workload,
    bursty_trace,
    fine_grained_trace,
    mixed_granularity_trace,
    uniform_trace,
)

US = 1e-6


class TestProfile:
    def test_paper_anchor_arithmetic(self):
        p = RAXML_42SC
        # 90% of 28.46 s on SPEs at 96 us per task -> ~267 k off-loads.
        assert p.spe_seconds == pytest.approx(25.614)
        assert p.ppe_seconds == pytest.approx(2.846)
        assert 260_000 < p.tasks_per_bootstrap_full < 270_000
        # The off-loadable code runs ~1.38x slower on the PPE (the paper's
        # 1.32x overall speedup plus the 10% never-off-loaded part).
        assert 1.30 < p.ppe_slowdown < 1.45
        # Naive SPE code is ~1.86x slower than optimized.
        assert 1.75 < p.naive_slowdown < 1.95

    def test_function_shares_sum_to_one(self):
        assert sum(f.time_share for f in RAXML_42SC.functions) == pytest.approx(1.0)

    def test_function_lookup(self):
        assert RAXML_42SC.function_by_name("newview").reduction is False
        with pytest.raises(KeyError):
            RAXML_42SC.function_by_name("nope")

    def test_invalid_profiles_rejected(self):
        with pytest.raises(ValueError):
            RaxmlProfile(spe_fraction=1.5)


class TestTraceBuilder:
    def test_totals_match_profile(self):
        tr = TraceBuilder(seed=0).build(0, 500)
        p = RAXML_42SC
        assert tr.total_spe_time * tr.scale == pytest.approx(p.spe_seconds)
        # PPE gaps + explicitly charged runtime overhead = PPE total.
        overhead = tr.n_tasks * p.runtime_overhead_us * US
        assert (tr.total_ppe_time + overhead) * tr.scale == pytest.approx(
            p.ppe_seconds, rel=1e-6
        )

    def test_function_time_shares_preserved(self):
        tr = TraceBuilder(seed=0).build(0, 1000)
        per_fn = {}
        for item in tr.items:
            per_fn.setdefault(item.task.function, 0.0)
            per_fn[item.task.function] += item.task.spe_time
        total = sum(per_fn.values())
        for f in RAXML_42SC.functions:
            assert per_fn[f.name] / total == pytest.approx(f.time_share, rel=1e-6)

    def test_deterministic_per_index(self):
        a = TraceBuilder(seed=3).build(5, 200)
        b = TraceBuilder(seed=3).build(5, 200)
        assert a.items == b.items

    def test_different_indices_differ(self):
        a = TraceBuilder(seed=3).build(0, 200)
        b = TraceBuilder(seed=3).build(1, 200)
        assert a.items != b.items

    def test_scale_is_compression_ratio(self):
        tr = TraceBuilder().build(0, 500)
        assert tr.scale == pytest.approx(
            RAXML_42SC.tasks_per_bootstrap_full / 500
        )

    def test_loops_attached(self):
        tr = TraceBuilder().build(0, 100)
        assert all(i.task.loop is not None for i in tr.items)
        assert all(i.task.loop.iterations == 228 for i in tr.items)

    def test_too_few_tasks_rejected(self):
        with pytest.raises(ValueError):
            TraceBuilder().build(0, 3)

    @given(n=st.integers(min_value=50, max_value=2000))
    @settings(max_examples=20, deadline=None)
    def test_mean_task_duration_near_96us(self, n):
        tr = TraceBuilder(seed=1).build(0, n)
        mean = tr.total_spe_time / tr.n_tasks
        assert mean == pytest.approx(96 * US, rel=0.02)


class TestWorkload:
    def test_traces_cached(self):
        wl = Workload(bootstraps=2, tasks_per_bootstrap=100)
        assert wl.trace(0) is wl.trace(0)

    def test_index_bounds(self):
        wl = Workload(bootstraps=2, tasks_per_bootstrap=100)
        with pytest.raises(IndexError):
            wl.trace(2)

    def test_serial_estimate_scales_with_bootstraps(self):
        w1 = Workload(bootstraps=1, tasks_per_bootstrap=100)
        w4 = Workload(bootstraps=4, tasks_per_bootstrap=100)
        assert w4.serial_estimate() == pytest.approx(
            4 * w1.serial_estimate(), rel=0.01
        )

    def test_invalid_bootstraps(self):
        with pytest.raises(ValueError):
            Workload(bootstraps=0)


class TestSynthetic:
    def test_uniform_trace_shape(self):
        tr = uniform_trace(n_tasks=10, spe_us=100, gap_us=10)
        assert tr.n_tasks == 10
        assert tr.total_spe_time == pytest.approx(10 * 100 * US)

    def test_fine_grained_fails_granularity(self):
        tr = fine_grained_trace(n_tasks=5)
        for item in tr.items:
            assert item.task.spe_time > item.task.ppe_time

    def test_mixed_granularity_has_both(self):
        tr = mixed_granularity_trace(n_tasks=30)
        fns = {i.task.function for i in tr.items}
        assert fns == {"tiny", "coarse"}

    def test_bursty_trace_has_quiet_gaps(self):
        tr = bursty_trace(n_bursts=3, burst_len=5, quiet_us=5000)
        gaps = [i.ppe_gap for i in tr.items]
        assert sum(1 for g in gaps if g > 1000 * US) == 2
