"""Tests for the comparator platform models (Figure 10 machinery)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.platforms import POWER5, SMTMultiprocessor, XEON_2X_HT


def test_paper_topologies():
    assert XEON_2X_HT.n_contexts == 4  # two HT Xeons
    assert POWER5.n_contexts == 4      # dual-core, quad-thread


def test_single_job_runs_at_single_thread_speed():
    assert XEON_2X_HT.makespan(1) == pytest.approx(
        XEON_2X_HT.bootstrap_seconds
    )


def test_two_jobs_use_two_cores():
    m = SMTMultiprocessor("m", 2, 2, 10.0, (1.0, 1.3))
    assert m.makespan(2) == pytest.approx(10.0)


def test_smt_gain_below_two():
    # 4 jobs on 2 cores x 2 threads: each core runs 2 jobs at 1.3x
    # combined throughput -> 2 * 10 / 1.3.
    m = SMTMultiprocessor("m", 2, 2, 10.0, (1.0, 1.3))
    assert m.makespan(4) == pytest.approx(20.0 / 1.3)


def test_oversubscription_time_slices():
    m = SMTMultiprocessor("m", 1, 2, 10.0, (1.0, 1.25))
    # 6 jobs on one 2-thread core: 6 * 10 / 1.25.
    assert m.makespan(6) == pytest.approx(48.0)


def test_round_robin_placement_imbalance():
    m = SMTMultiprocessor("m", 2, 1, 10.0, (1.0,))
    # 3 jobs on 2 single-thread cores: the loaded core serializes 2.
    assert m.makespan(3) == pytest.approx(20.0)


def test_validation():
    with pytest.raises(ValueError):
        SMTMultiprocessor("m", 0, 1, 1.0, (1.0,))
    with pytest.raises(ValueError):
        SMTMultiprocessor("m", 1, 2, 1.0, (1.0,))  # wrong curve length
    with pytest.raises(ValueError):
        SMTMultiprocessor("m", 1, 1, -1.0, (1.0,))
    with pytest.raises(ValueError):
        SMTMultiprocessor("m", 1, 1, 1.0, (0.9,))  # first entry must be 1
    with pytest.raises(ValueError):
        SMTMultiprocessor("m", 1, 2, 1.0, (1.0, 0.8))  # decreasing
    with pytest.raises(ValueError):
        SMTMultiprocessor("m", 1, 1, 1.0, (1.0,)).makespan(0)


def test_sweep_matches_pointwise():
    counts = [1, 4, 16]
    assert XEON_2X_HT.sweep(counts) == [XEON_2X_HT.makespan(b) for b in counts]


@given(b=st.integers(min_value=1, max_value=256))
@settings(max_examples=50, deadline=None)
def test_makespan_monotone_and_work_conserving(b):
    m = POWER5
    t = m.makespan(b)
    assert t >= m.bootstrap_seconds  # can't beat one job's time
    assert t >= b * m.bootstrap_seconds / (
        m.n_cores * m.smt_throughput[-1]
    ) - 1e-9  # bounded by aggregate throughput
    if b > 1:
        assert t >= m.makespan(b - 1) - 1e-9  # monotone in load
