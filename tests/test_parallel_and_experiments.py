"""Tests for parallel sweep execution and the experiment harness API."""

import pytest

from repro.analysis import (
    SWEEP_LARGE,
    SWEEP_SMALL,
    figure_sweep,
)
from repro.analysis.parallel import parallel_sweep, run_points
from repro.core.schedulers import edtlp, mgps, static_hybrid


class TestParallelSweep:
    def test_serial_path_matches_run_experiment(self):
        from repro import Workload, run_experiment

        results = parallel_sweep(edtlp(), [1, 2], tasks_per_bootstrap=80)
        for r, b in zip(results, [1, 2]):
            direct = run_experiment(
                edtlp(), Workload(bootstraps=b, tasks_per_bootstrap=80)
            )
            assert r.makespan == direct.makespan

    def test_process_pool_matches_serial(self):
        serial = parallel_sweep(mgps(), [1, 2, 4], tasks_per_bootstrap=80)
        parallel = parallel_sweep(
            mgps(), [1, 2, 4], tasks_per_bootstrap=80, workers=3
        )
        assert [r.makespan for r in serial] == [
            r.makespan for r in parallel
        ]
        assert [r.offloads for r in serial] == [
            r.offloads for r in parallel
        ]

    def test_mixed_spec_points(self):
        results = run_points(
            [(edtlp(), 2), (static_hybrid(2), 2), (mgps(), 2)],
            tasks_per_bootstrap=80,
            workers=2,
        )
        assert [r.scheduler for r in results] == [
            "edtlp", "edtlp-llp2", "mgps"
        ]


class TestExperimentHarness:
    def test_sweep_constants_shape(self):
        assert SWEEP_SMALL[0] == 1 and SWEEP_SMALL[-1] == 16
        assert SWEEP_LARGE[0] == 1 and SWEEP_LARGE[-1] == 128
        assert list(SWEEP_SMALL) == sorted(SWEEP_SMALL)
        assert list(SWEEP_LARGE) == sorted(SWEEP_LARGE)

    def test_figure_sweep_default_curves(self):
        result = figure_sweep((1, 2), tasks_per_bootstrap=60)
        assert set(result.series) == {
            "MGPS", "EDTLP-LLP2", "EDTLP-LLP4", "EDTLP"
        }
        assert result.xs == [1, 2]
        assert all(len(v) == 2 for v in result.series.values())

    def test_figure_sweep_custom_schedulers(self):
        result = figure_sweep(
            (1,),
            schedulers={"only": edtlp()},
            tasks_per_bootstrap=60,
            name="custom",
        )
        assert list(result.series) == ["only"]
        assert result.name == "custom"

    def test_render_contains_everything(self):
        result = figure_sweep((1,), schedulers={"x": edtlp()},
                              tasks_per_bootstrap=60, name="My Figure")
        text = result.render()
        assert "My Figure" in text and "x" in text

    def test_results_attached(self):
        result = figure_sweep((1,), schedulers={"x": edtlp()},
                              tasks_per_bootstrap=60)
        assert result.results["x"][0].bootstraps == 1
