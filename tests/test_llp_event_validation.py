"""Closed-form LLP model vs event-accurate simulation.

The sweeps rely on the closed-form invocation timing; this suite runs
the identical work-sharing protocol as real concurrent simulation
processes and demands agreement, for every degree and across randomized
task geometries (hypothesis).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cell.params import CellParams
from repro.core.llp import LLPConfig, LoopParallelModel
from repro.core.llp_sim import simulate_invocation
from repro.workloads.taskspec import LoopSpec, TaskSpec

US = 1e-6


def make_task(spe_us, coverage, iterations, reduction, bpi=144,
              function="newview"):
    return TaskSpec(
        function=function,
        spe_time=spe_us * US,
        ppe_time=1.4 * spe_us * US,
        naive_spe_time=2 * spe_us * US,
        loop=LoopSpec(
            iterations=iterations,
            coverage=coverage,
            reduction=reduction,
            bytes_per_iteration=bpi,
        ),
    )


def closed_form(task, k, cross=0):
    model = LoopParallelModel(CellParams(), LLPConfig(adaptive=False))
    return model.invoke(task, k, cross_cell_workers=cross).duration


def event_accurate(task, k, cross=0):
    return simulate_invocation(
        task, k, CellParams(), LLPConfig(adaptive=False),
        cross_cell_workers=cross,
    )


@pytest.mark.parametrize("k", range(1, 9))
def test_agreement_across_degrees(k):
    task = make_task(96.0, 0.7, 228, reduction=True)
    assert event_accurate(task, k) == pytest.approx(
        closed_form(task, k), rel=1e-9
    )


@pytest.mark.parametrize("reduction", [True, False])
def test_agreement_with_and_without_reduction(reduction):
    task = make_task(104.0, 0.71, 228, reduction=reduction)
    for k in (2, 5, 8):
        assert event_accurate(task, k) == pytest.approx(
            closed_form(task, k), rel=1e-9
        )


def test_agreement_with_cross_cell_workers():
    task = make_task(96.0, 0.7, 228, reduction=True)
    for cross in (0, 1, 3):
        assert event_accurate(task, 4, cross) == pytest.approx(
            closed_form(task, 4, cross), rel=1e-9
        )


def test_degenerate_cases_serial():
    no_loop = TaskSpec("f", 96 * US, 130 * US, 180 * US, loop=None)
    assert simulate_invocation(no_loop, 4) == pytest.approx(96 * US)
    tiny = make_task(96.0, 0.7, 1, reduction=True)
    assert simulate_invocation(tiny, 4) == pytest.approx(96 * US)


@given(
    spe_us=st.floats(min_value=5.0, max_value=500.0),
    coverage=st.floats(min_value=0.05, max_value=0.95),
    iterations=st.integers(min_value=2, max_value=2000),
    reduction=st.booleans(),
    bpi=st.integers(min_value=16, max_value=1024),
    k=st.integers(min_value=2, max_value=8),
)
@settings(max_examples=120, deadline=None)
def test_agreement_randomized(spe_us, coverage, iterations, reduction,
                              bpi, k):
    task = make_task(spe_us, coverage, iterations, reduction, bpi)
    assert event_accurate(task, k) == pytest.approx(
        closed_form(task, k), rel=1e-9
    )


def test_adaptive_fraction_also_agrees():
    """After the model adapts, feeding its fraction into the event
    simulation must still reproduce the closed-form duration."""
    model = LoopParallelModel(CellParams())
    task = make_task(96.0, 0.7, 228, reduction=True)
    for _ in range(30):
        model.invoke(task, 4)
    f = model.master_fraction("newview", 4)
    predicted = model.invoke(task, 4).duration  # uses fraction f
    simulated = simulate_invocation(
        task, 4, CellParams(), LLPConfig(), master_fraction=f
    )
    assert simulated == pytest.approx(predicted, rel=1e-9)
