"""Tests for the memory-aware scheduling extension.

The paper's future work (Section 6): incorporate memory-related criteria
into SPE scheduling and drop the fixed-size code-footprint assumption.
The extension adds per-task working sets, LRU data residency in the SPE
local stores, and locality-aware SPE selection.
"""

import pytest

from repro import Workload, edtlp, run_experiment
from repro.cell import CellParams, CodeImage, LocalStoreOverflow, SPE
from repro.sim import Environment
from repro.workloads import FixedTraceWorkload, interleaved_locality_trace

KB = 1024


def spe():
    return SPE(Environment(), CellParams(), 0, 0)


class TestResidency:
    def test_first_load_is_a_miss(self):
        s = spe()
        assert s.load_data("b0", 40 * KB) == 40 * KB
        assert s.data_resident("b0")

    def test_second_load_is_a_hit(self):
        s = spe()
        s.load_data("b0", 40 * KB)
        assert s.load_data("b0", 40 * KB) == 0

    def test_lru_eviction_order(self):
        s = spe()
        # Data space is ~252 KB (no code image): three 80 KB sets fit,
        # the fourth evicts the least recently used.
        for key in ("a", "b", "c"):
            s.load_data(key, 80 * KB)
        s.load_data("a", 80 * KB)  # refresh a -> b is now LRU
        s.load_data("d", 80 * KB)
        assert not s.data_resident("b")
        assert s.data_resident("a")
        assert s.data_resident("d")
        assert s.data_evictions == 1

    def test_code_load_evicts_data_when_needed(self):
        s = spe()
        s.load_data("big", 200 * KB)
        # A 117 KB image does not fit next to 200 KB of data.
        t = s.load_code(CodeImage("m", "serial", 117 * KB))
        assert t > 0
        assert not s.data_resident("big")

    def test_oversized_working_set_raises(self):
        s = spe()
        with pytest.raises(LocalStoreOverflow):
            s.load_data("huge", 300 * KB)

    def test_zero_bytes_is_noop(self):
        s = spe()
        assert s.load_data("empty", 0) == 0
        assert not s.data_resident("empty")

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            spe().load_data("x", -1)


def locality_workload(n_keys=8, tasks_per_key=40, ws_kb=100):
    """Interleaved tasks from ``n_keys`` data sets with big working sets."""
    return FixedTraceWorkload(
        [interleaved_locality_trace(n_keys=n_keys, tasks_per_key=tasks_per_key,
                                    working_set_kb=ws_kb)]
    )


class TestLocalityAwareScheduling:
    def test_hits_recorded_in_result(self):
        wl = Workload(bootstraps=2, tasks_per_bootstrap=100)
        r = run_experiment(edtlp(), wl)
        # data accounting flows into the simulation (stats are internal,
        # but the run completes and pays some DMA)
        assert r.makespan > 0

    def test_locality_reduces_misses(self):
        from repro.cell.machine import CellMachine
        from repro.core.runtime import EDTLPRuntime, ProcContext
        from repro.mpi.master_worker import WorkDispenser
        from repro.mpi.process import mpi_worker
        from repro.sim.engine import Environment

        def run(aware):
            env = Environment()
            machine = CellMachine(env)
            rt = EDTLPRuntime(env, machine, locality_aware=aware)
            wl = locality_workload()
            disp = WorkDispenser(env, 1, 1)
            ctx = ProcContext(rank=0, cell_id=0,
                              thread=machine.cores[0].thread("m0"))
            p = env.process(mpi_worker(ctx, rt, disp, wl))
            env.run_until_complete(p)
            return env.now, rt.stats

        t_unaware, s_unaware = run(False)
        t_aware, s_aware = run(True)
        # 8 interleaved 100 KB sets: only ~2 fit per store.  A single
        # LIFO-reused SPE thrashes; locality-aware selection spreads the
        # sets across 8 SPEs and hits nearly always.
        assert s_aware.data_misses < s_unaware.data_misses
        assert s_aware.data_hits > s_unaware.data_hits
        assert t_aware < t_unaware

    def test_spec_flag_threads_through(self):
        wl = Workload(bootstraps=4, tasks_per_bootstrap=100)
        r = run_experiment(edtlp(locality_aware=True), wl)
        r0 = run_experiment(edtlp(), wl)
        # RAxML working sets are small and per-process; awareness must
        # never hurt much.
        assert r.makespan <= 1.05 * r0.makespan

    def test_profile_traces_carry_working_sets(self):
        wl = Workload(bootstraps=1, tasks_per_bootstrap=50)
        tr = wl.trace(0)
        assert all(i.task.working_set > 0 for i in tr.items)
        assert len({i.task.data_key for i in tr.items}) == 1


def test_mgps_composes_with_locality_awareness():
    from repro import Workload, mgps, run_experiment

    wl = Workload(bootstraps=4, tasks_per_bootstrap=120)
    plain = run_experiment(mgps(), wl)
    aware = run_experiment(mgps(locality_aware=True), wl)
    # Composition is legal and does not regress the adaptive scheduler.
    assert aware.makespan <= 1.05 * plain.makespan
