"""Tests for MGPS's utilization-history window."""

import pytest

from repro.core.history import UtilizationHistory


def test_decision_point_every_window():
    h = UtilizationHistory(n_spes=8)
    points = [h.note_dispatch(t * 1.0) for t in range(17)]
    assert sum(points) == 2
    assert points[7] and points[15]


def test_custom_window_length():
    h = UtilizationHistory(n_spes=8, window=4)
    points = [h.note_dispatch(float(t)) for t in range(8)]
    assert points[3] and points[7]


def test_u_counts_dispatches_during_execution():
    h = UtilizationHistory(n_spes=8)
    for t in (0.0, 1.0, 2.0, 3.0):
        h.note_dispatch(t)
    # Task started at 0.0 and ended at 2.5: itself + dispatches at 1, 2.
    assert h.note_departure(0.0, 2.5) == 3


def test_u_capped_at_spe_count():
    h = UtilizationHistory(n_spes=4)
    for t in range(10):
        h.note_dispatch(float(t))
    assert h.note_departure(0.0, 9.0) == 4


def test_u_estimate_is_rounded_mean():
    h = UtilizationHistory(n_spes=8)
    h._u_samples.extend([2, 2, 3, 3])
    assert h.u_estimate == 2  # mean 2.5 rounds to 2 (banker's rounding)
    h._u_samples.extend([8, 8, 8, 8])
    assert h.u_estimate == 5


def test_llp_activates_when_u_low():
    h = UtilizationHistory(n_spes=8)
    h._u_samples.extend([2, 2, 2])
    active, degree = h.llp_decision(waiting_tasks=2)
    assert active and degree == 4


def test_llp_stays_off_when_u_high():
    h = UtilizationHistory(n_spes=8)
    h._u_samples.extend([7, 8, 8])
    active, degree = h.llp_decision(waiting_tasks=8)
    assert not active and degree == 1


def test_llp_threshold_is_half_the_spes():
    h = UtilizationHistory(n_spes=8)
    h._u_samples.append(4)
    assert h.llp_decision(waiting_tasks=4)[0]
    h._u_samples.clear()
    h._u_samples.append(5)
    assert not h.llp_decision(waiting_tasks=4)[0]


def test_degree_formula_floor_nspes_over_t():
    h = UtilizationHistory(n_spes=8)
    h._u_samples.append(2)
    assert h.llp_decision(waiting_tasks=3)[1] == 2
    assert h.llp_decision(waiting_tasks=1)[1] == 8
    # T larger than the machine: degree 1 -> no LLP.
    active, degree = h.llp_decision(waiting_tasks=9)
    assert degree == 1 and not active


def test_no_samples_means_no_llp():
    h = UtilizationHistory(n_spes=8)
    assert h.llp_decision(waiting_tasks=1) == (False, 1)


def test_inverted_interval_rejected():
    h = UtilizationHistory(n_spes=8)
    with pytest.raises(ValueError):
        h.note_departure(2.0, 1.0)


def test_reset_clears_state():
    h = UtilizationHistory(n_spes=8)
    h.note_dispatch(0.0)
    h.note_departure(0.0, 1.0)
    h.reset()
    assert h.u_estimate == 0


def test_invalid_construction():
    with pytest.raises(ValueError):
        UtilizationHistory(n_spes=0)
    with pytest.raises(ValueError):
        UtilizationHistory(n_spes=8, window=0)
