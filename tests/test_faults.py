"""Fault injection and fault-tolerant off-loading.

The acceptance surface of the robustness PR: fault plans are declarative,
seeded and deterministic; the injector realizes them without perturbing
fault-free runs; the runtimes retry, blacklist, recover loop chunks and
fall back to the PPE; MGPS re-baselines its window and degree formula on
the surviving SPEs; and — the headline invariant — under any plan that
leaves at least the PPE alive, every scenario completes with
*bit-identical* application results to the fault-free run.  Only the
timeline may change.
"""

import math

import pytest

from repro.cell.machine import CellMachine
from repro.cell.params import BladeParams, CellParams
from repro.core.history import UtilizationHistory
from repro.core.runner import run_experiment
from repro.core.runtime import EDTLPRuntime, MGPSRuntime, ProcContext
from repro.core.schedulers import edtlp, linux, mgps
from repro.faults import FaultInjector, FaultPlan, SlowSPE, SPEKill, TolerancePolicy
from repro.obs import MetricsRegistry
from repro.sim.engine import Environment
from repro.sim.trace import Tracer
from repro.workloads.traces import Workload

# Raw makespans of these small workloads are a few milliseconds of
# simulated time, so kills must land in the first ~1 ms to matter.
KILL_T = 2e-5

_FACTORIES = {"linux": linux, "edtlp": edtlp, "mgps": mgps}


def _run(name, faults=None, bootstraps=4, tasks=60, seed=0, observed=False,
         tolerance=None):
    wl = Workload(bootstraps=bootstraps, tasks_per_bootstrap=tasks, seed=seed)
    tracer = Tracer(enabled=True) if observed else None
    metrics = MetricsRegistry() if observed else None
    result = run_experiment(
        _FACTORIES[name](), wl, seed=seed, faults=faults,
        tracer=tracer, metrics=metrics, tolerance=tolerance,
    )
    return result, tracer, metrics


@pytest.fixture(scope="module")
def clean_digests():
    """Fault-free result digest per scheduler on the shared workload."""
    return {
        name: _run(name)[0].result_digest for name in _FACTORIES
    }


# -- the plan -----------------------------------------------------------------

class TestFaultPlan:
    def test_null_plan(self):
        assert FaultPlan().is_null
        assert not FaultPlan(offload_fail_rate=0.1).is_null
        assert not FaultPlan(spe_kills=(SPEKill(0, 1e-3),)).is_null

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(offload_fail_rate=-0.1)
        with pytest.raises(ValueError):
            FaultPlan(offload_fail_rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(dma_error_rate=2.0)
        with pytest.raises(ValueError):
            SPEKill(spe=-1, time=1e-3)
        with pytest.raises(ValueError):
            SPEKill(spe=0, time=-1.0)
        with pytest.raises(ValueError):
            SlowSPE(spe=0, factor=0.0)

    def test_with_returns_modified_copy(self):
        base = FaultPlan(seed=7)
        noisy = base.with_(offload_fail_rate=0.2)
        assert base.is_null
        assert noisy.offload_fail_rate == 0.2
        assert noisy.seed == 7

    def test_json_roundtrip(self):
        plan = FaultPlan(
            seed=3, offload_fail_rate=0.05, dma_error_rate=0.01,
            spe_kills=(SPEKill(2, 2e-4), SPEKill(5, 4e-4)),
            slow_spes=(SlowSPE(1, 2.0, jitter=0.1),),
        )
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_from_json_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="banana"):
            FaultPlan.from_json('{"seed": 1, "banana": true}')


class TestTolerancePolicy:
    def test_backoff_grows_and_caps(self):
        pol = TolerancePolicy(backoff_base=10e-6, backoff_factor=2.0,
                              backoff_cap=50e-6)
        delays = [pol.backoff(a) for a in range(5)]
        assert delays[0] == pytest.approx(10e-6)
        assert delays[1] == pytest.approx(20e-6)
        assert delays == sorted(delays)
        assert max(delays) == pytest.approx(50e-6)

    def test_deadline_has_floor(self):
        pol = TolerancePolicy(timeout_factor=8.0, timeout_floor=500e-6)
        # floor + factor x expected: generous for tiny tasks, scaled for
        # long ones.
        assert pol.attempt_deadline(1e-6) == pytest.approx(508e-6)
        assert pol.attempt_deadline(1e-3) == pytest.approx(8.5e-3)

    def test_validation(self):
        with pytest.raises(ValueError):
            TolerancePolicy(max_attempts=0)
        with pytest.raises(ValueError):
            TolerancePolicy(backoff_factor=0.5)


# -- the injector -------------------------------------------------------------

class TestInjector:
    def _machine(self):
        env = Environment()
        return env, CellMachine(env, BladeParams())

    def test_null_plan_draws_nothing(self):
        env, machine = self._machine()
        inj = FaultInjector(env, machine, FaultPlan())
        spe = machine.spes[0]
        assert not inj.offload_fails(spe)
        assert inj.dma_errors(spe, max_retries=3) == 0
        assert inj.service_factor(spe) == 1.0
        assert inj.death_time(spe) == math.inf

    def test_draws_are_deterministic_per_seed(self):
        def draws(seed):
            env, machine = self._machine()
            inj = FaultInjector(
                env, machine, FaultPlan(seed=seed, offload_fail_rate=0.3)
            )
            return [inj.offload_fails(machine.spes[2]) for _ in range(64)]

        assert draws(5) == draws(5)
        assert draws(5) != draws(6)

    def test_per_spe_streams_are_independent(self):
        env, machine = self._machine()
        plan = FaultPlan(seed=1, offload_fail_rate=0.3)
        a = FaultInjector(env, machine, plan)
        b = FaultInjector(env, machine, plan)
        # Draining SPE 0's stream in one injector must not change what
        # SPE 1 sees (CRN: per-fault-kind-per-SPE substreams).
        for _ in range(100):
            a.offload_fails(machine.spes[0])
        seq_a = [a.offload_fails(machine.spes[1]) for _ in range(32)]
        seq_b = [b.offload_fails(machine.spes[1]) for _ in range(32)]
        assert seq_a == seq_b

    def test_kill_is_delivered_on_schedule(self):
        env, machine = self._machine()
        inj = FaultInjector(
            env, machine, FaultPlan(spe_kills=(SPEKill(3, 1e-4),))
        )
        fired = []
        inj.add_listener(lambda: fired.append(env.now))
        inj.install()
        env.run(until=2e-4)
        spe = machine.spes[3]
        assert not spe.alive
        assert spe.fail_time == pytest.approx(1e-4)
        assert machine.pool.n_live == machine.n_spes - 1
        assert fired == [pytest.approx(1e-4)]
        assert inj.kills_delivered == 1

    def test_kill_out_of_range_rejected(self):
        env, machine = self._machine()
        with pytest.raises(ValueError, match="only"):
            FaultInjector(
                env, machine, FaultPlan(spe_kills=(SPEKill(99, 1e-4),))
            )


class TestPoolDeath:
    def test_mark_out_of_service_is_idempotent(self):
        env = Environment()
        machine = CellMachine(env, BladeParams())
        spe = machine.spes[0]
        spe.alive = False
        machine.pool.mark_out_of_service(spe)
        machine.pool.mark_out_of_service(spe)
        assert machine.pool.n_live == machine.n_spes - 1

    def test_acquire_yields_none_when_all_dead(self):
        env = Environment()
        machine = CellMachine(env, BladeParams())
        for spe in machine.spes:
            spe.alive = False
            machine.pool.mark_out_of_service(spe)
        got = []

        def proc():
            spe = yield machine.pool.acquire()
            got.append(spe)

        env.process(proc())
        env.run()
        assert got == [None]

    def test_waiters_fail_when_last_spe_dies(self):
        env = Environment()
        machine = CellMachine(env, BladeParams(cell=CellParams(n_spes=1)))
        (spe,) = machine.spes
        got = []

        def holder():
            s = yield machine.pool.acquire()
            yield env.timeout(1e-4)
            s.alive = False
            machine.pool.mark_out_of_service(s)
            machine.pool.release(s)

        def waiter():
            s = yield machine.pool.acquire()
            got.append(s)

        env.process(holder())
        env.process(waiter())
        env.run()
        assert got == [None]


# -- tolerance end to end -----------------------------------------------------

class TestToleranceEndToEnd:
    def test_transient_failures_retry_and_preserve_results(
        self, clean_digests
    ):
        plan = FaultPlan(seed=2, offload_fail_rate=0.2)
        r, _t, _m = _run("edtlp", faults=plan)
        assert r.bootstraps_completed == 4
        assert r.extras["offload_retries"] > 0
        assert r.result_digest == clean_digests["edtlp"]

    def test_dma_errors_are_absorbed(self, clean_digests):
        plan = FaultPlan(seed=2, dma_error_rate=0.2)
        r, _t, _m = _run("mgps", faults=plan)
        assert r.extras["dma_errors"] > 0
        assert r.result_digest == clean_digests["mgps"]

    def test_slow_spe_stretches_timeline_only(self, clean_digests):
        plan = FaultPlan(slow_spes=(SlowSPE(0, 3.0), SlowSPE(1, 3.0)))
        r, _t, _m = _run("mgps", faults=plan)
        clean, _t2, _m2 = _run("mgps")
        assert r.makespan >= clean.makespan
        assert r.result_digest == clean_digests["mgps"]

    def test_killing_spes_degrades_gracefully(self, clean_digests):
        plan = FaultPlan(
            spe_kills=tuple(SPEKill(i, KILL_T * (i + 1)) for i in range(3))
        )
        r, _t, _m = _run("mgps", faults=plan)
        assert r.extras["spe_kills"] == 3
        assert r.extras["live_spes"] == 5
        assert r.bootstraps_completed == 4
        assert r.result_digest == clean_digests["mgps"]

    def test_all_spes_dead_falls_back_to_ppe(self, clean_digests):
        plan = FaultPlan(
            spe_kills=tuple(SPEKill(i, KILL_T) for i in range(8))
        )
        for name in ("edtlp", "mgps"):
            r, _t, _m = _run(name, faults=plan)
            assert r.extras["live_spes"] == 0
            assert r.extras["retry_fallbacks"] > 0
            assert r.bootstraps_completed == 4
            assert r.result_digest == clean_digests[name]

    def test_linux_survives_pinned_spe_death(self, clean_digests):
        plan = FaultPlan(spe_kills=(SPEKill(0, KILL_T),))
        r, _t, _m = _run("linux", faults=plan)
        assert r.bootstraps_completed == 4
        assert r.result_digest == clean_digests["linux"]

    def test_blacklist_shrinks_live_set(self):
        # Every dispatch to every SPE fails: each SPE is blacklisted
        # after ``blacklist_after`` consecutive failures and the work
        # ends on the PPE.
        plan = FaultPlan(seed=0, offload_fail_rate=0.99)
        r, _t, _m = _run("edtlp", faults=plan, bootstraps=2, tasks=20)
        assert r.extras["spe_blacklists"] > 0
        assert r.extras["retry_fallbacks"] > 0
        assert r.bootstraps_completed == 2

    def test_fault_free_run_is_untouched_by_machinery(self):
        # The null-plan tolerant path must not lose or reorder work.
        r_plain, _t, _m = _run("mgps")
        r_null, _t2, _m2 = _run("mgps", faults=FaultPlan())
        assert r_null.result_digest == r_plain.result_digest
        assert r_null.offloads == r_plain.offloads
        assert r_null.extras["offload_retries"] == 0
        assert r_null.extras["retry_fallbacks"] == 0


# -- chaos sweep (the headline invariant) -------------------------------------

def _chaos_plan(seed: int) -> FaultPlan:
    """A varied, seeded storm: rates and kill sets derived from the seed."""
    kills = tuple(
        SPEKill(spe, KILL_T * (i + 1))
        for i, spe in enumerate(range(seed % 4))
    )
    slow = (
        (SlowSPE(4 + seed % 4, 1.5 + (seed % 3)),) if seed % 3 == 0 else ()
    )
    return FaultPlan(
        seed=seed,
        offload_fail_rate=0.05 * (seed % 5),
        dma_error_rate=0.03 * (seed % 4),
        spe_kills=kills,
        slow_spes=slow,
    )


class TestChaosSweep:
    @pytest.mark.parametrize("scheduler", sorted(_FACTORIES))
    def test_twenty_seeded_storms_never_change_results(
        self, scheduler, clean_digests
    ):
        for seed in range(20):
            plan = _chaos_plan(seed)
            r, _t, _m = _run(scheduler, faults=plan, bootstraps=4, tasks=60)
            assert r.bootstraps_completed == 4, (
                f"{scheduler} lost bootstraps under chaos plan {seed}"
            )
            assert r.result_digest == clean_digests[scheduler], (
                f"{scheduler} diverged from the fault-free results under "
                f"chaos plan {seed}: {plan}"
            )


# -- MGPS degradation ---------------------------------------------------------

class TestMGPSDegradation:
    def test_resize_follows_live_capacity(self):
        h = UtilizationHistory(n_spes=8)
        for i in range(8):
            h.note_dispatch(i * 1e-5)
            h.note_departure(i * 1e-5, i * 1e-5 + 5e-6)
        h.resize(6)
        assert h.n_spes == 6
        assert h.window == 6
        assert h.llp_threshold == 3
        assert all(u <= 6 for u in h._u_samples)

    def test_resize_respects_pinned_window_and_threshold(self):
        h = UtilizationHistory(n_spes=8, window=4, llp_threshold=2)
        h.resize(5)
        assert h.window == 4
        assert h.llp_threshold == 2

    def test_degree_formula_uses_survivors(self):
        # ⌊N_live / T⌋: after losing 2 of 8 SPEs, two task sources get
        # degree 3 (was 4).
        h = UtilizationHistory(n_spes=8)
        h._u_samples.append(1)  # U=1 <= threshold: LLP activates
        assert h.llp_decision(waiting_tasks=2) == (True, 4)
        h.resize(6)
        assert h.llp_decision(waiting_tasks=2) == (True, 3)

    @pytest.mark.parametrize("k", [2, 4])
    def test_killing_k_spes_rebaselines_the_scheduler(self, k, clean_digests):
        plan = FaultPlan(
            spe_kills=tuple(SPEKill(i, KILL_T * (i + 1)) for i in range(k))
        )
        r, tracer, _m = _run("mgps", faults=plan, observed=True)
        changes = tracer.filter(category="sched", event="capacity_change")
        assert len(changes) == k
        last = changes[-1]
        n_live = 8 - k
        assert last.get("live_spes") == n_live
        assert last.get("window") == n_live
        assert last.get("max_degree") == min(n_live, max(2, n_live // 2))
        # Post-kill LLP decisions obey ⌊N_live / T⌋.
        kill_done = max(c.time for c in changes)
        for d in tracer.filter(category="sched", event="decision"):
            if d.time > kill_done and d.get("active"):
                assert d.get("degree") <= max(2, n_live // max(1, d.get("t")))
        assert r.result_digest == clean_digests["mgps"]


# -- determinism --------------------------------------------------------------

class TestDeterminism:
    def test_same_plan_same_trace(self):
        plan = FaultPlan(
            seed=9, offload_fail_rate=0.1, dma_error_rate=0.05,
            spe_kills=(SPEKill(2, KILL_T), SPEKill(6, 4 * KILL_T)),
            slow_spes=(SlowSPE(1, 2.0, jitter=0.2),),
        )
        runs = [_run("mgps", faults=plan, observed=True) for _ in range(2)]
        (r1, t1, _m1), (r2, t2, _m2) = runs
        assert r1.raw_makespan == r2.raw_makespan
        assert r1.result_digest == r2.result_digest
        assert len(t1.records) == len(t2.records)
        for a, b in zip(t1.records, t2.records):
            assert (a.time, a.category, a.actor, a.event, a.data) == \
                   (b.time, b.category, b.actor, b.event, b.data)

    def test_different_fault_seed_changes_the_storm(self):
        base = dict(offload_fail_rate=0.3, dma_error_rate=0.1)
        r1, _t1, _m1 = _run("edtlp", faults=FaultPlan(seed=1, **base))
        r2, _t2, _m2 = _run("edtlp", faults=FaultPlan(seed=2, **base))
        assert r1.result_digest == r2.result_digest  # results still equal
        assert (
            r1.extras["offload_retries"],
            r1.raw_makespan,
        ) != (
            r2.extras["offload_retries"],
            r2.raw_makespan,
        )


# -- PPE fallback accounting (direct) -----------------------------------------

class TestPPEFallbackAccounting:
    @pytest.mark.parametrize("runtime_cls", [EDTLPRuntime, MGPSRuntime])
    def test_fallback_updates_stats_metrics_and_trace(self, runtime_cls):
        env = Environment()
        machine = CellMachine(env, BladeParams())
        tracer, metrics = Tracer(enabled=True), MetricsRegistry()
        rt = runtime_cls(env, machine, tracer=tracer, metrics=metrics)
        ctx = ProcContext(
            rank=0, cell_id=0, thread=machine.cores[0].thread("mpi0")
        )
        wl = Workload(bootstraps=1, tasks_per_bootstrap=4, seed=0)
        task = wl.trace(0).items[0].task

        def proc():
            yield from rt._ppe_fallback(ctx, task)
            yield from rt._ppe_fallback(ctx, task)

        env.process(proc())
        env.run()
        assert rt.stats.ppe_fallbacks == 2
        assert metrics.get("runtime.ppe_fallbacks").value == 2
        events = tracer.filter(category="ppe", event="ppe_fallback")
        assert len(events) == 2
        assert events[0].get("function") == task.function
        assert events[0].get("duration") == pytest.approx(task.ppe_time)
        assert env.now == pytest.approx(2 * task.ppe_time)
        # The fallback runs on the PPE: no SPE was ever occupied.
        assert all(s.tasks_executed == 0 for s in machine.spes)
