"""Tests for multi-blade cluster scaling (Section 5.5)."""

import pytest

from repro.core.cluster import ClusterResult, run_cluster_experiment
from repro.core.schedulers import edtlp, mgps
from repro.serve.dispatch import block_partition


def _block_sizes(total, n_blades):
    return [len(b) for b in block_partition(total, n_blades)]


class TestDistribution:
    # The historical contiguous layout now lives only in the dispatch
    # registry (the ``distribute_bootstraps`` shim is gone); these pin
    # the block_partition semantics the cluster driver relies on.
    def test_even_split(self):
        assert _block_sizes(100, 4) == [25, 25, 25, 25]

    def test_remainder_to_early_blades(self):
        assert _block_sizes(10, 3) == [4, 3, 3]

    def test_blocks_are_contiguous_and_disjoint(self):
        blocks = block_partition(10, 3)
        flat = [i for block in blocks for i in block]
        assert flat == list(range(10))

    def test_sum_preserved(self):
        for total in (7, 64, 100, 129):
            for n in (1, 2, 3, 5, 7):
                assert sum(_block_sizes(total, n)) == total

    def test_validation(self):
        with pytest.raises(ValueError):
            block_partition(0, 1)
        with pytest.raises(ValueError):
            block_partition(5, 0)
        with pytest.raises(ValueError):
            block_partition(2, 3)

    def test_shim_is_gone(self):
        # The deprecated wrapper must not resurface.
        import repro.core
        import repro.core.cluster

        assert not hasattr(repro.core.cluster, "distribute_bootstraps")
        assert not hasattr(repro.core, "distribute_bootstraps")


class TestDispatchRouting:
    def test_default_is_static_block(self):
        r = run_cluster_experiment(edtlp(), 10, 3, tasks_per_bootstrap=80)
        assert r.dispatch == "static-block"
        assert [b.bootstraps for b in r.per_blade] == [4, 3, 3]

    def test_explicit_policy_routes_through_registry(self):
        r = run_cluster_experiment(edtlp(), 10, 3, tasks_per_bootstrap=80,
                                   dispatch="least-loaded")
        assert r.dispatch == "least-loaded"
        assert sum(b.bootstraps for b in r.per_blade) == 10

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            run_cluster_experiment(edtlp(), 10, 3, dispatch="nope")

    def test_offline_partitions_agree_across_policies(self):
        # Offline (batch) driving: every registry policy that partitions
        # up front must conserve the bootstrap count and makespan
        # remains the max over blades.
        for name in ("static-block", "least-loaded"):
            r = run_cluster_experiment(mgps(), 16, 4, tasks_per_bootstrap=80,
                                       dispatch=name)
            assert sum(b.bootstraps for b in r.per_blade) == 16
            assert r.makespan == max(b.makespan for b in r.per_blade)


class TestClusterRuns:
    def test_makespan_is_slowest_blade(self):
        r = run_cluster_experiment(edtlp(), 20, 2, tasks_per_bootstrap=80)
        assert r.makespan == max(b.makespan for b in r.per_blade)
        assert r.n_blades == 2
        assert sum(b.bootstraps for b in r.per_blade) == 20

    def test_more_blades_scale_throughput(self):
        one = run_cluster_experiment(edtlp(), 32, 1, tasks_per_bootstrap=80)
        four = run_cluster_experiment(edtlp(), 32, 4, tasks_per_bootstrap=80)
        # Sub-linear under plain EDTLP: 8 bootstraps per dual-Cell blade
        # leave half the SPEs idle (exactly the Section 5.5 motivation
        # for multigrain scheduling at scale).
        assert 2.2 < one.makespan / four.makespan < 4.0
        # MGPS recovers part of the loss by loop-parallelizing the
        # underloaded blades.
        m_four = run_cluster_experiment(mgps(), 32, 4, tasks_per_bootstrap=80)
        assert m_four.makespan < four.makespan

    def test_section_55_claim(self):
        """Spreading 100 bootstraps across blades: MGPS never loses, and
        once per-blade bags drop below the SPE count (here 25 blades at
        4 bootstraps each) the multigrain gain is large.

        Honest wrinkle: around 8-9 bootstraps per dual-Cell blade the
        paper's floor(n_spes / T) degree formula floors to 1 and MGPS
        degenerates to EDTLP — the gain curve dips before it spikes.
        """
        gains = {}
        for n_blades in (1, 4, 25):
            e = run_cluster_experiment(edtlp(), 100, n_blades,
                                       tasks_per_bootstrap=100)
            m = run_cluster_experiment(mgps(), 100, n_blades,
                                       tasks_per_bootstrap=100)
            assert m.makespan <= 1.01 * e.makespan  # never loses
            gains[n_blades] = e.makespan / m.makespan
        assert gains[4] > 1.0
        assert gains[25] > 1.25
        assert gains[25] > gains[1]

    def test_aggregates(self):
        r = run_cluster_experiment(mgps(), 8, 4, tasks_per_bootstrap=80)
        assert 0.0 < r.mean_spe_utilization <= 1.0
        assert r.total_llp_invocations >= 0
