"""End-to-end tests of the experiment runner."""

import pytest

from repro import (
    BladeParams,
    Workload,
    edtlp,
    linux,
    mgps,
    run_experiment,
    run_sweep,
    static_hybrid,
)


def small_wl(b=2):
    return Workload(bootstraps=b, tasks_per_bootstrap=60)


def test_runs_and_reports_fields():
    r = run_experiment(edtlp(), small_wl())
    assert r.scheduler == "edtlp"
    assert r.bootstraps == 2
    assert r.makespan > 0
    assert r.raw_makespan * r.scale == pytest.approx(r.makespan)
    assert r.offloads == 120
    assert len(r.per_spe_busy) == 8
    assert 0 <= r.spe_utilization <= 1
    assert 0 <= r.ppe_occupancy <= 1


def test_deterministic_given_seed():
    a = run_experiment(mgps(), small_wl())
    b = run_experiment(mgps(), small_wl())
    assert a.makespan == b.makespan
    assert a.offloads == b.offloads


def test_default_process_counts():
    assert run_experiment(edtlp(), small_wl(2)).n_processes == 2
    assert run_experiment(edtlp(), small_wl(12)).n_processes == 8
    assert run_experiment(static_hybrid(4), small_wl(12)).n_processes == 2
    assert run_experiment(static_hybrid(2), small_wl(12)).n_processes == 4


def test_explicit_process_count():
    r = run_experiment(edtlp(n_processes=3), small_wl(6))
    assert r.n_processes == 3


def test_linux_process_count_capped_by_spes():
    with pytest.raises(ValueError, match="pins one SPE"):
        run_experiment(linux(n_processes=9), small_wl(9))


def test_more_workers_help_edtlp():
    wl = small_wl(8)
    r1 = run_experiment(edtlp(n_processes=1), wl)
    r8 = run_experiment(edtlp(n_processes=8), wl)
    assert r8.makespan < 0.5 * r1.makespan


def test_dual_cell_blade_nearly_doubles_throughput():
    wl = Workload(bootstraps=16, tasks_per_bootstrap=150)
    one = run_experiment(edtlp(), wl)
    two = run_experiment(edtlp(), wl, blade=BladeParams(n_cells=2))
    assert one.makespan / two.makespan > 1.6


def test_schedulers_see_identical_workload():
    wl = small_wl(2)
    run_experiment(edtlp(), wl)
    t0 = wl.trace(0)
    run_experiment(linux(), wl)
    assert wl.trace(0) is t0  # traces cached, never regenerated


def test_run_sweep_returns_one_result_per_count():
    rs = run_sweep(edtlp(), [1, 2, 4], tasks_per_bootstrap=60)
    assert [r.bootstraps for r in rs] == [1, 2, 4]
    assert all(r.makespan > 0 for r in rs)


def test_spec_validation():
    with pytest.raises(ValueError):
        edtlp(n_processes=0)
    with pytest.raises(ValueError):
        static_hybrid(0)
    from repro.core.schedulers import SchedulerSpec
    with pytest.raises(ValueError):
        SchedulerSpec(kind="bogus")


def test_spec_names():
    assert edtlp().name == "edtlp"
    assert static_hybrid(4).name == "edtlp-llp4"
    assert mgps(label="custom").name == "custom"


def test_makespan_scaled_to_paper_seconds():
    # One bootstrap at any compression lands near the 28.46 s anchor.
    r = run_experiment(edtlp(n_processes=1), Workload(1, tasks_per_bootstrap=200))
    assert 26 < r.makespan < 31


def test_top_level_api_surface():
    """The public names a downstream user imports must exist."""
    import repro

    for name in repro.__all__:
        assert getattr(repro, name, None) is not None, name
