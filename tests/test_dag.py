"""Tests for the workflow DAG layer (src/repro/serve/dag.py).

Acceptance surface of the workflow PR: staged pipelines run to full
drain deterministically; autoMRE bootstopping cancels >= 30% of a
converging 100-replicate fan-out with exact job conservation and zero
losses; a repeated identical submission hits the digest-keyed stage
cache on every stage and reproduces the cold run's final digest bit
for bit; blade kills during the fan-out lose nothing.
"""

import dataclasses
import json

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.serve import (
    BladeKill,
    BootstopConfig,
    BootstopMonitor,
    DagConfig,
    FleetFaultPlan,
    JobTemplate,
    ResultCache,
    StageSpec,
    WorkflowSpec,
    content_key,
    raxml_workflow,
    replicate_tree,
    run_dag,
)
from repro.sim.trace import Tracer

T = JobTemplate("t", bootstraps=1, tasks_per_bootstrap=8, variants=1)


# -- spec validation ----------------------------------------------------------

class TestWorkflowSpec:
    def test_topo_order_respects_dependencies(self):
        spec = raxml_workflow(replicates=10)
        order = [s.name for s in spec.topo_order()]
        assert order.index("check-msa") < order.index("infer-ml")
        assert order.index("infer-ml") < order.index("bootstrap")
        assert order.index("bootstrap") < order.index("consensus")
        assert spec.total_jobs == 1 + 1 + 10 + 1

    def test_duplicate_stage_names_rejected(self):
        with pytest.raises(ValueError, match="unique"):
            WorkflowSpec("w", (StageSpec("a", T), StageSpec("a", T)))

    def test_unknown_dependency_rejected(self):
        with pytest.raises(ValueError, match="unknown stage"):
            WorkflowSpec("w", (StageSpec("a", T, after=("ghost",)),))

    def test_cycle_rejected(self):
        with pytest.raises(ValueError, match="cycle"):
            WorkflowSpec("w", (
                StageSpec("a", T, after=("b",)),
                StageSpec("b", T, after=("a",)),
            ))

    def test_stage_validation(self):
        with pytest.raises(ValueError):
            StageSpec("", T)
        with pytest.raises(ValueError):
            StageSpec("a", T, fan_out=0)
        with pytest.raises(ValueError):
            StageSpec("a", T, after=("x", "x"))

    def test_config_validation(self):
        wf = raxml_workflow(replicates=4)
        with pytest.raises(ValueError):
            DagConfig(workflow=wf, submissions=0)
        with pytest.raises(ValueError):
            DagConfig(workflow=wf, blades=0)
        with pytest.raises(ValueError):
            DagConfig(workflow=wf, interarrival_s=-1.0)


# -- replicate trees ----------------------------------------------------------

class TestReplicateTrees:
    def test_stateless_and_deterministic(self):
        spec = raxml_workflow(replicates=8)
        a = replicate_tree(spec, 0, 3)
        b = replicate_tree(spec, 0, 3)
        assert a.newick() == b.newick()

    def test_seed_and_replicate_change_the_draw(self):
        spec = raxml_workflow(replicates=8, conflict=1.0)
        trees = {replicate_tree(spec, 0, r).newick() for r in range(8)}
        assert len(trees) > 1  # independent topologies actually differ

    def test_converging_workload_mostly_shares_the_base(self):
        spec = raxml_workflow(replicates=40, conflict=0.15)
        news = [replicate_tree(spec, 0, r).newick() for r in range(40)]
        most_common = max(news, key=news.count)
        assert news.count(most_common) > 20  # base topology dominates


# -- bootstop monitor ---------------------------------------------------------

class TestBootstopConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            BootstopConfig(min_replicates=1)
        with pytest.raises(ValueError):
            BootstopConfig(check_every=0)
        with pytest.raises(ValueError):
            BootstopConfig(threshold=0.0)
        with pytest.raises(ValueError):
            BootstopConfig(stable_checks=0)

    def test_describe_round_trips_the_fields(self):
        d = BootstopConfig(min_replicates=10, check_every=2,
                           threshold=0.1, stable_checks=3).describe()
        assert d == "min=10 every=2 thr=0.1 stable=3"

    def test_diverging_trees_do_not_converge_early(self):
        spec = raxml_workflow(replicates=30, conflict=1.0)
        mon = BootstopMonitor(BootstopConfig(min_replicates=10,
                                             check_every=5, threshold=0.01))
        for r in range(30):
            mon.add(replicate_tree(spec, 0, r))
        assert not mon.converged  # tight threshold, independent trees


# -- determinism --------------------------------------------------------------

class TestDeterminism:
    def test_same_config_same_result(self):
        cfg = DagConfig(workflow=raxml_workflow(replicates=20), seed=3,
                        bootstop=BootstopConfig(min_replicates=10,
                                                check_every=2))
        a = run_dag(cfg)
        b = run_dag(cfg)
        assert a.to_json() == b.to_json()
        assert a.final_digests == b.final_digests
        assert a.makespan == b.makespan

    def test_json_is_loadable_and_conserved(self):
        cfg = DagConfig(workflow=raxml_workflow(replicates=12), seed=1)
        payload = json.loads(run_dag(cfg).to_json())
        jobs = payload["jobs"]
        assert jobs["conservation_ok"]
        assert jobs["admitted"] == (jobs["completed"] + jobs["cancelled"]
                                    + jobs["aborted"] + jobs["lost"])


# -- bootstopping -------------------------------------------------------------

class TestBootstopping:
    def test_cancels_at_least_30_percent_with_exact_conservation(self):
        # The acceptance criterion: a converging 100-replicate fan-out.
        cfg = DagConfig(workflow=raxml_workflow(replicates=100),
                        seed=0, bootstop=BootstopConfig())
        r = run_dag(cfg)
        assert r.fan_out_total == 100
        assert r.bootstop_cancelled >= 30
        assert r.bootstop_savings >= 0.30
        assert r.serve.lost_jobs == 0
        assert r.conservation_ok
        s = r.serve.summary
        assert s["cancelled"] == r.bootstop_cancelled
        assert s["admitted"] == (s["completed"] + s["cancelled"]
                                 + s["deadline_aborts"] + r.serve.lost_jobs)

    def test_bootstop_shortens_the_makespan(self):
        wf = raxml_workflow(replicates=60)
        full = run_dag(DagConfig(workflow=wf, seed=0))
        stopped = run_dag(DagConfig(workflow=wf, seed=0,
                                    bootstop=BootstopConfig()))
        assert stopped.makespan < full.makespan
        assert stopped.bootstop_saved_s > 0

    def test_bootstop_off_runs_the_full_fan_out(self):
        r = run_dag(DagConfig(workflow=raxml_workflow(replicates=30),
                              seed=0))
        assert r.bootstop_cancelled == 0
        assert r.serve.summary["completed"] == r.serve.summary["admitted"]

    def test_converged_trace_event_emitted(self):
        tracer = Tracer(enabled=True)
        run_dag(DagConfig(workflow=raxml_workflow(replicates=60), seed=0,
                          bootstop=BootstopConfig()), tracer=tracer)
        events = [r.event for r in tracer.records if r.category == "serve"]
        assert "bootstop-converged" in events
        assert "workflow-cancel" in events


# -- result cache -------------------------------------------------------------

class TestResultCache:
    def test_repeat_submission_hits_every_stage_with_identical_digest(self):
        # The acceptance criterion: 100% stage-cache hit rate and a
        # digest-identical final result on the repeat submission.
        cfg = DagConfig(workflow=raxml_workflow(replicates=40),
                        submissions=2, seed=0)
        r = run_dag(cfg)
        cold, warm = r.workflows
        assert cold["cache_hits"] == 0
        assert warm["cache_hits"] == warm["stages_total"]
        assert r.final_digests[0] == r.final_digests[1]
        assert warm["makespan_s"] < cold["makespan_s"]

    def test_warm_hits_replay_bootstopped_replicate_set(self):
        # Under bootstop the cold run completes a timing-dependent
        # replicate subset; the warm hit must replay exactly that set,
        # so the consensus digest cannot drift.
        cfg = DagConfig(workflow=raxml_workflow(replicates=60),
                        submissions=2, seed=0, bootstop=BootstopConfig())
        r = run_dag(cfg)
        assert r.final_digests[0] == r.final_digests[1]
        assert r.workflows[1]["cache_hits"] == r.workflows[1]["stages_total"]

    def test_shared_cache_spans_runs(self):
        wf = raxml_workflow(replicates=20)
        cache = ResultCache(MetricsRegistry())
        run_dag(DagConfig(workflow=wf, seed=0), cache=cache)
        warm = run_dag(DagConfig(workflow=wf, seed=0), cache=cache)
        assert warm.cache_hit_rate > 0
        assert warm.workflows[0]["cache_hits"] == len(wf.stages)

    def test_cache_off_never_hits(self):
        cfg = DagConfig(workflow=raxml_workflow(replicates=12),
                        submissions=2, seed=0, cache=False)
        r = run_dag(cfg)
        assert r.cache_hits == 0
        assert not r.cache_enabled
        assert r.final_digests[0] == r.final_digests[1]  # still identical

    def test_content_key_sensitivity(self):
        assert content_key("a", 1) == content_key("a", 1)
        assert content_key("a", 1) != content_key("a", 2)
        assert content_key("ab") != content_key("a", "b")


# -- faults during fan-out ----------------------------------------------------

class TestFaultsDuringFanOut:
    def test_blade_kill_mid_fan_out_loses_nothing(self):
        wf = raxml_workflow(replicates=40)
        base = dict(workflow=wf, seed=0, blades=3)
        clean = run_dag(DagConfig(**base))
        faulty = run_dag(DagConfig(
            **base,
            faults=FleetFaultPlan(kills=(BladeKill(blade=1, at=120.0),),
                                  seed=0),
        ))
        assert faulty.serve.lost_jobs == 0
        assert faulty.conservation_ok
        assert faulty.serve.summary["failovers"] > 0
        # Bootstop off: the fault may move timing but never results.
        assert faulty.final_digests == clean.final_digests

    def test_blade_kill_with_bootstop_conserves_jobs(self):
        r = run_dag(DagConfig(
            workflow=raxml_workflow(replicates=40), seed=0, blades=3,
            bootstop=BootstopConfig(),
            faults=FleetFaultPlan(kills=(BladeKill(blade=1, at=120.0),),
                                  seed=0),
        ))
        assert r.serve.lost_jobs == 0
        assert r.conservation_ok
        assert r.bootstop_cancelled + r.serve.summary["completed"] == \
            r.serve.summary["admitted"]


# -- metrics ------------------------------------------------------------------

class TestDagMetrics:
    def test_dag_metric_family_published(self):
        metrics = MetricsRegistry()
        run_dag(DagConfig(workflow=raxml_workflow(replicates=30),
                          submissions=2, seed=0,
                          bootstop=BootstopConfig(min_replicates=10,
                                                  check_every=2)),
                metrics=metrics)
        names = set(metrics.names())
        for name in ("serve.dag.workflows", "serve.dag.stages",
                     "serve.dag.cache_hits", "serve.dag.cache_misses",
                     "serve.dag.cache_hit_rate", "serve.dag.bootstop_savings",
                     "serve.dag.bootstop_cancelled",
                     "serve.dag.wasted_work_avoided_s"):
            assert name in names, name
        assert metrics.get("serve.dag.workflows").value == 2
        assert metrics.get("serve.dag.stages_in_flight").value == 0

    def test_interarrival_overlap_still_conserves(self):
        r = run_dag(DagConfig(workflow=raxml_workflow(replicates=10),
                              submissions=3, interarrival_s=50.0, seed=0))
        assert r.conservation_ok
        assert r.serve.lost_jobs == 0
        assert len(r.final_digests) == 3
