"""Tests for the scheduler health monitor, report and benchmark gate CLI.

The acceptance surface of the monitoring PR: a healthy Figure-8 MGPS run
reports zero findings; deliberately misconfigured runs trip the right
detector; the threshold mini-language parses and rejects correctly;
``repro health`` exits non-zero on findings; ``repro report`` emits one
self-contained HTML file with the expected sections.
"""

import re

import pytest

from repro.cli import main
from repro.core.llp import LLPConfig
from repro.core.runner import run_experiment
from repro.core.schedulers import mgps
from repro.obs import (
    HealthFinding,
    MetricsRegistry,
    MonitorConfig,
    analyze_run,
    parse_threshold,
    render_findings,
    render_report,
    resolve_metric,
)
from repro.sim.trace import Tracer
from repro.workloads.traces import Workload


def _observed_run(spec, bootstraps=3, tasks=150, seed=0):
    tracer, metrics = Tracer(enabled=True), MetricsRegistry()
    wl = Workload(bootstraps=bootstraps, tasks_per_bootstrap=tasks, seed=seed)
    result = run_experiment(spec, wl, tracer=tracer, metrics=metrics, seed=seed)
    return tracer, metrics, result


@pytest.fixture(scope="module")
def healthy_run():
    """A Figure-8-style MGPS run with default (sane) configuration."""
    return _observed_run(mgps())


@pytest.fixture(scope="module")
def saturated_run():
    """LLP trigger threshold forced to 0: U can never drop below it, so
    MGPS sits in pure task-level mode while the SPEs go underfed."""
    return _observed_run(mgps(llp_u_threshold=0))


# -- threshold mini-language --------------------------------------------------

class TestThresholdParser:
    @pytest.mark.parametrize("expr,metric,op,value", [
        ("spe_idle_ratio>0.25", "spe_idle_ratio", ">", 0.25),
        ("makespan_s<=30", "makespan_s", "<=", 30.0),
        ("  runtime.offload_waits >= 1 ", "runtime.offload_waits", ">=", 1.0),
        ("mgps.u_estimate!=0", "mgps.u_estimate", "!=", 0.0),
        ("offloads==600", "offloads", "==", 600.0),
        ("llp.invocations<1e3", "llp.invocations", "<", 1000.0),
        ('spe.utilization{spe="cell0.spe0"}<0.1',
         'spe.utilization{spe="cell0.spe0"}', "<", 0.1),
    ])
    def test_parses(self, expr, metric, op, value):
        t = parse_threshold(expr)
        assert (t.metric, t.op, t.value) == (metric, op, value)

    @pytest.mark.parametrize("expr", [
        "", "just_a_name", ">0.5", "a>>1", "a > b", "1 > a", "a = 1",
    ])
    def test_rejects(self, expr):
        with pytest.raises(ValueError):
            parse_threshold(expr)

    def test_violated_semantics(self):
        t = parse_threshold("idle>0.25")
        assert t.violated(0.3) and not t.violated(0.25)
        assert str(t) == "idle>0.25"


class TestResolveMetric:
    def _inputs(self):
        reg = MetricsRegistry()
        reg.counter("runtime.offloads").inc(7)
        return {"spe_idle_ratio": 0.5}, reg

    def test_summary_wins_over_registry(self):
        summary, reg = self._inputs()
        assert resolve_metric("spe_idle_ratio", summary, reg) == 0.5
        assert resolve_metric("runtime.offloads", summary, reg) == 7.0

    def test_unknown_name_lists_known_metrics(self):
        summary, reg = self._inputs()
        with pytest.raises(ValueError) as exc:
            resolve_metric("no_such_metric", summary, reg)
        msg = str(exc.value)
        assert "no_such_metric" in msg
        # The error is actionable: it names every metric the caller
        # could have meant.
        assert "spe_idle_ratio" in msg
        assert "runtime.offloads" in msg


# -- end-to-end acceptance ----------------------------------------------------

class TestHealthVerdicts:
    def test_healthy_fig8_run_has_zero_findings(self, healthy_run):
        tracer, metrics, result = healthy_run
        assert result.llp_invocations > 0  # MGPS did engage LLP
        assert analyze_run(tracer, metrics) == []

    def test_disabled_llp_trigger_trips_saturation(self, saturated_run):
        tracer, metrics, result = saturated_run
        assert result.llp_invocations == 0  # the misconfiguration worked
        findings = analyze_run(tracer, metrics)
        assert "window-u-saturation" in [f.detector for f in findings]
        sat = next(f for f in findings
                   if f.detector == "window-u-saturation")
        assert sat.severity == "critical"
        assert sat.evidence["llp_invocations"] == 0
        assert sat.evidence["low_u_decisions"] > 0

    def test_frozen_unbalancing_trips_imbalance(self):
        # adaptive=False freezes the master fraction at an equal split;
        # with a deliberate head-start bias the join idle stays tens of
        # microseconds and never shrinks.
        spec = mgps(llp_config=LLPConfig(adaptive=False,
                                         head_start_bias=-0.3))
        tracer, metrics, _ = _observed_run(spec)
        findings = analyze_run(tracer, metrics)
        assert "llp-imbalance" in [f.detector for f in findings]


# -- synthetic detector inputs ------------------------------------------------

class TestSyntheticDetectors:
    def test_oscillation_on_alternating_decisions(self):
        tracer = Tracer()
        for i in range(12):
            tracer.emit(i * 0.1, "sched", "ppe", "decision",
                        u=4 if i % 2 else 5, active=bool(i % 2))
        findings = analyze_run(tracer, MetricsRegistry())
        oscillation = [f for f in findings if f.detector == "mgps-oscillation"]
        assert len(oscillation) == 1
        assert oscillation[0].evidence["toggles"] == 11

    def test_no_oscillation_on_stable_decisions(self):
        tracer = Tracer()
        for i in range(12):
            tracer.emit(i * 0.1, "sched", "ppe", "decision",
                        u=2, active=i > 2)  # one clean switch
        assert all(f.detector != "mgps-oscillation"
                   for f in analyze_run(tracer, MetricsRegistry()))

    def _starved_registry(self, waits):
        reg = MetricsRegistry()
        reg.gauge("run.raw_makespan_s").set(1.0)
        reg.gauge("run.n_spes").set(4)
        reg.counter("runtime.offload_waits").inc(waits)
        for i, util in enumerate((0.9, 0.85, 0.1, 0.05)):
            reg.gauge(f'spe.utilization{{spe="cell0.spe{i}"}}').set(util)
        return reg

    def test_starvation_needs_blocked_offloads(self):
        # Idle SPEs alone are slack, not starvation: without a blocked
        # off-load the detector stays quiet...
        assert analyze_run(None, self._starved_registry(waits=0)) == []
        # ...with one, the two mostly-idle SPEs are reported.
        findings = analyze_run(None, self._starved_registry(waits=3))
        starved = [f for f in findings if f.detector == "spe-starvation"]
        assert len(starved) == 1
        assert starved[0].severity == "critical"  # 95% idle > 75%
        assert set(starved[0].evidence["idle_ratio_by_spe"]) == {
            "cell0.spe2", "cell0.spe3",
        }

    def test_imbalance_on_growing_join_idle(self):
        tracer = Tracer()
        for i in range(12):
            tracer.emit(i * 0.1, "llp", "spe0", "llp_invoke",
                        function="logl", k=4, join_idle_us=5.0 + i,
                        master_fraction=0.25, chunks=4)
        findings = analyze_run(tracer, MetricsRegistry())
        imb = [f for f in findings if f.detector == "llp-imbalance"]
        assert len(imb) == 1
        assert imb[0].evidence["function"] == "logl"
        assert imb[0].evidence["k"] == 4

    def test_no_imbalance_when_shrinking_or_tiny(self):
        shrinking, tiny = Tracer(), Tracer()
        for i in range(12):
            shrinking.emit(i * 0.1, "llp", "spe0", "llp_invoke",
                           function="f", k=2, join_idle_us=20.0 / (i + 1))
            tiny.emit(i * 0.1, "llp", "spe0", "llp_invoke",
                      function="f", k=2, join_idle_us=0.5)
        for tracer in (shrinking, tiny):
            assert all(f.detector != "llp-imbalance"
                       for f in analyze_run(tracer, MetricsRegistry()))

    def test_churn_reads_flip_counters(self):
        reg = MetricsRegistry()
        reg.counter("granularity.flips.logl").inc(5)
        reg.counter("granularity.flips.newview").inc(1)  # below threshold
        findings = analyze_run(None, reg)
        churn = [f for f in findings if f.detector == "granularity-churn"]
        assert len(churn) == 1
        assert churn[0].evidence["flips_by_function"] == {"logl": 5.0}

    def test_config_overrides(self):
        reg = MetricsRegistry()
        reg.counter("granularity.flips.logl").inc(2)
        assert analyze_run(None, reg) == []
        strict = MonitorConfig().with_(churn_flips=2)
        assert len(analyze_run(None, reg, config=strict)) == 1

    def _storm_registry(self, offloads, retries, fallbacks):
        reg = MetricsRegistry()
        reg.counter("runtime.offloads").inc(offloads)
        reg.counter("runtime.offload_retries").inc(retries)
        reg.counter("runtime.retry_fallbacks").inc(fallbacks)
        return reg

    def test_fault_storm_on_high_retry_ratio(self):
        findings = analyze_run(None, self._storm_registry(20, 8, 2))
        storm = [f for f in findings if f.detector == "fault-storm"]
        assert len(storm) == 1
        assert storm[0].severity == "warning"
        assert storm[0].evidence["offload_retries"] == 8.0

    def test_no_storm_below_ratio_or_volume(self):
        # Healthy ratio: 2 retries over 40 attempts.
        assert all(f.detector != "fault-storm"
                   for f in analyze_run(None, self._storm_registry(40, 2, 0)))
        # Too few events to judge: 2 of 4 failed but under min volume.
        assert all(f.detector != "fault-storm"
                   for f in analyze_run(None, self._storm_registry(4, 2, 0)))

    def _degraded_registry(self, kills, blacklists, live, n_spes=8):
        reg = MetricsRegistry()
        reg.gauge("run.n_spes").set(n_spes)
        reg.counter("faults.spe_kills").inc(kills)
        reg.counter("runtime.spe_blacklists").inc(blacklists)
        reg.gauge("run.live_spes").set(live)
        return reg

    def test_degraded_capacity_warns_on_lost_spes(self):
        findings = analyze_run(None, self._degraded_registry(2, 1, 5))
        deg = [f for f in findings if f.detector == "degraded-capacity"]
        assert len(deg) == 1
        assert deg[0].severity == "warning"
        assert deg[0].evidence["spe_kills"] == 2.0
        assert deg[0].evidence["live_spes"] == 5.0

    def test_degraded_capacity_critical_when_none_survive(self):
        findings = analyze_run(None, self._degraded_registry(8, 0, 0))
        deg = next(f for f in findings
                   if f.detector == "degraded-capacity")
        assert deg.severity == "critical"
        assert "no SPE survived" in deg.summary

    def test_quiet_without_capacity_loss(self):
        assert all(f.detector != "degraded-capacity"
                   for f in analyze_run(None, self._degraded_registry(0, 0, 8)))


# -- findings rendering -------------------------------------------------------

class TestFindingOutput:
    def test_render_ok(self):
        assert render_findings([]) == "health: OK (0 findings)"

    def test_render_itemizes(self):
        f = HealthFinding("spe-starvation", "warning", "2 SPEs idle",
                          {"offload_waits": 3.0})
        text = render_findings([f])
        assert "[warning] spe-starvation: 2 SPEs idle" in text
        assert "offload_waits = 3.0" in text

    def test_to_dict_round_trips_evidence(self):
        f = HealthFinding("d", "critical", "s", {"a": 1})
        assert f.to_dict() == {"detector": "d", "severity": "critical",
                               "summary": "s", "evidence": {"a": 1}}


# -- CLI: health / report -----------------------------------------------------

class TestHealthCLI:
    def test_healthy_scenario_exits_zero(self, capsys):
        assert main(["health", "fig8", "--bootstraps", "3",
                     "--tasks", "150"]) == 0
        out = capsys.readouterr().out
        assert "health: OK (0 findings)" in out

    def test_findings_exit_nonzero(self, capsys, monkeypatch):
        import repro.cli as cli
        monkeypatch.setitem(cli._SCENARIO_SPECS, "fig8",
                            (lambda: mgps(llp_u_threshold=0), 1))
        assert main(["health", "fig8", "--bootstraps", "3",
                     "--tasks", "150"]) == 1
        out = capsys.readouterr().out
        assert "window-u-saturation" in out

    def test_json_output(self, capsys, monkeypatch):
        import json

        import repro.cli as cli
        monkeypatch.setitem(cli._SCENARIO_SPECS, "fig8",
                            (lambda: mgps(llp_u_threshold=0), 1))
        assert main(["health", "fig8", "--bootstraps", "3",
                     "--tasks", "150", "--json"]) == 1
        findings = json.loads(capsys.readouterr().out)
        assert findings[0]["detector"] == "window-u-saturation"
        assert findings[0]["severity"] == "critical"


class TestReportCLI:
    @pytest.fixture(scope="class")
    def report_html(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("report") / "report.html"
        code = main(["report", "fig8", "--bootstraps", "3",
                     "--tasks", "150", "--out", str(path)])
        assert code == 0
        return path.read_text()

    def test_section_anchors_present(self, report_html):
        for anchor in ('id="summary"', 'id="findings"', 'id="gantt"',
                       'id="u-series"', 'id="latency"',
                       'id="llp-adaptation"'):
            assert anchor in report_html

    def test_self_contained_no_external_urls(self, report_html):
        assert re.search(r"https?://", report_html) is None
        assert "<script" not in report_html  # inline CSS/SVG only
        assert "<style>" in report_html and "<svg" in report_html

    def test_healthy_report_shows_ok(self, report_html):
        assert "All detectors passed" in report_html

    def test_findings_render_in_report(self, saturated_run):
        tracer, metrics, _ = saturated_run
        html = render_report(tracer, metrics, analyze_run(tracer, metrics))
        assert "window-u-saturation" in html
        assert 'class="chip critical"' in html

    def test_missing_directory_is_an_error(self, capsys):
        assert main(["report", "fig8", "--out",
                     "/nonexistent/dir/report.html"]) == 2
        assert "does not exist" in capsys.readouterr().err


class TestStatsFailOn:
    def test_fail_on_violation_exits_one(self, capsys):
        code = main(["stats", "fig8", "--bootstraps", "3", "--tasks", "150",
                     "--fail-on", "spe_idle_ratio>0.0"])
        assert code == 1
        assert "FAIL spe_idle_ratio>0" in capsys.readouterr().err

    def test_fail_on_pass_exits_zero(self, capsys):
        code = main(["stats", "fig8", "--bootstraps", "3", "--tasks", "150",
                     "--fail-on", "spe_idle_ratio>0.99",
                     "--fail-on", "runtime.offload_waits>0"])
        assert code == 0
        out = capsys.readouterr().out
        assert out.count("ok   ") == 2

    def test_unknown_metric_is_usage_error(self, capsys):
        code = main(["stats", "fig8", "--bootstraps", "2", "--tasks", "60",
                     "--fail-on", "no_such_metric>1"])
        assert code == 2
        err = capsys.readouterr().err
        assert "unknown metric" in err
        # The message lists the valid names, so the typo is fixable
        # without reading the source.
        assert "known metrics" in err
        assert "spe_idle_ratio" in err
        assert "runtime.offloads" in err

    def test_bad_expression_is_usage_error(self, capsys):
        code = main(["stats", "fig8", "--fail-on", "not an expression"])
        assert code == 2
        assert "cannot parse threshold" in capsys.readouterr().err


# -- serving-layer coverage ---------------------------------------------------

def _serve_run(**overrides):
    from repro.serve import ServeConfig, TenantSpec, JobTemplate, run_service

    small = JobTemplate("small", bootstraps=2, tasks_per_bootstrap=60,
                        variants=2)
    cfg = ServeConfig(
        tenants=(TenantSpec("hose", small, arrival="poisson",
                            arrival_rate=overrides.pop("arrival_rate", 0.5)),),
        duration_s=600.0, seed=3, **overrides,
    )
    tracer, metrics = Tracer(enabled=True), MetricsRegistry()
    run_service(cfg, tracer=tracer, metrics=metrics)
    return tracer, metrics


class TestQueueSaturation:
    def _registry(self, arrivals, rejected):
        reg = MetricsRegistry()
        reg.counter("serve.arrivals").inc(arrivals)
        reg.counter("serve.rejected").inc(rejected)
        reg.gauge("serve.queue_capacity").set(64)
        return reg

    def test_inert_below_min_arrivals(self):
        # 10 of 19 shed is a 53% rejection ratio, but 19 offered jobs
        # is below the evidence floor — too small a sample to judge.
        assert analyze_run(None, self._registry(19, 10)) == []

    def test_inert_on_non_serving_run(self, healthy_run):
        tracer, metrics, _ = healthy_run
        assert all(f.detector != "queue-saturation"
                   for f in analyze_run(tracer, metrics))

    def test_shedding_is_critical(self):
        findings = analyze_run(None, self._registry(100, 20))
        sat = [f for f in findings if f.detector == "queue-saturation"]
        assert len(sat) == 1
        assert sat[0].severity == "critical"
        assert sat[0].evidence["rejection_ratio"] == 0.2

    def test_quiet_below_rejection_threshold(self):
        assert all(f.detector != "queue-saturation"
                   for f in analyze_run(None, self._registry(100, 5)))

    def test_fires_on_real_saturated_service(self):
        # End to end: a one-blade fleet with a tight queue under an
        # open-loop firehose must trip the detector with live metrics.
        tracer, metrics = _serve_run(min_blades=1, max_blades=1,
                                     queue_capacity=4)
        sat = [f for f in analyze_run(tracer, metrics)
               if f.detector == "queue-saturation"]
        assert len(sat) == 1
        assert sat[0].severity == "critical"
        assert sat[0].evidence["arrivals"] > 0
        assert sat[0].evidence["queue_capacity"] == 4


class TestServingReportSection:
    def test_serving_section_renders_for_serve_run(self):
        tracer, metrics = _serve_run(min_blades=1, max_blades=1,
                                     queue_capacity=4)
        html = render_report(tracer, metrics, analyze_run(tracer, metrics))
        assert 'id="serving"' in html
        assert "Serving layer" in html
        assert "queue-saturation" in html

    def test_serving_section_absent_for_batch_run(self, healthy_run):
        tracer, metrics, _ = healthy_run
        html = render_report(tracer, metrics, analyze_run(tracer, metrics))
        assert 'id="serving"' not in html

    def test_serve_cli_report_is_self_contained(self, tmp_path):
        path = tmp_path / "serve.html"
        code = main(["serve", "--duration", "600", "--arrival-rate", "0.05",
                     "--seed", "7", "--report", str(path)])
        assert code == 0
        html = path.read_text()
        assert 'id="serving"' in html
        assert re.search(r"https?://", html) is None
