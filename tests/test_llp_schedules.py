"""Pluggable loop schedules: coverage, equivalence, trace visibility."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cell.params import CellParams
from repro.core.llp import (
    LLPConfig,
    LoopParallelModel,
    available_loop_schedules,
    resolve_loop_schedule,
)
from repro.core.runner import run_experiment
from repro.core.schedulers import edtlp, linux, mgps, static_hybrid
from repro.sim.trace import Tracer
from repro.workloads import Workload
from repro.workloads.taskspec import LoopSpec, TaskSpec

US = 1e-6

SCHEDULE_NAMES = [s.name for s in available_loop_schedules()]


def make_task(iterations=228, coverage=0.7, reduction=True):
    return TaskSpec(
        function="newview",
        spe_time=96.0 * US,
        ppe_time=13.0 * 96.0 * US,
        naive_spe_time=1.85 * 96.0 * US,
        loop=LoopSpec(
            iterations=iterations,
            coverage=coverage,
            reduction=reduction,
            bytes_per_iteration=144,
        ),
    )


class TestScheduleRegistry:
    def test_all_four_registered(self):
        assert {"static", "dynamic", "guided", "adaptive"} <= set(SCHEDULE_NAMES)
        assert SCHEDULE_NAMES == sorted(SCHEDULE_NAMES)

    def test_unknown_schedule_lists_known(self):
        with pytest.raises(ValueError) as err:
            resolve_loop_schedule("round-robin")
        message = str(err.value)
        assert "round-robin" in message and "known schedules" in message
        for name in SCHEDULE_NAMES:
            assert name in message

    def test_config_validates_schedule(self):
        with pytest.raises(ValueError, match=r"known schedules"):
            LLPConfig(schedule="bogus")
        with pytest.raises(ValueError, match=r"chunk_size"):
            LLPConfig(chunk_size=-1)


class TestIterationCoverage:
    """Every schedule must cover each iteration exactly once."""

    @given(
        n=st.integers(min_value=1, max_value=3000),
        k=st.integers(min_value=2, max_value=16),
        schedule=st.sampled_from(["static", "dynamic", "guided", "adaptive"]),
        chunk=st.integers(min_value=0, max_value=64),
    )
    @settings(max_examples=200, deadline=None)
    def test_plan_covers_all_iterations(self, n, k, schedule, chunk):
        if k > n:
            return  # the runtime clamps k to the iteration count
        model = LoopParallelModel(
            CellParams(), LLPConfig(schedule=schedule, chunk_size=chunk)
        )
        per_spe, sequence = resolve_loop_schedule(schedule).plan(
            model, "loop", n, k
        )
        assert (per_spe is None) != (sequence is None)
        chunks = per_spe if per_spe is not None else sequence
        assert sum(chunks) == n
        assert all(c >= 1 for c in chunks)
        if per_spe is not None:
            assert len(per_spe) == k

    @given(
        n=st.integers(min_value=1, max_value=2000),
        k=st.integers(min_value=1, max_value=8),
        schedule=st.sampled_from(["static", "dynamic", "guided", "adaptive"]),
    )
    @settings(max_examples=100, deadline=None)
    def test_invoke_accounts_every_iteration(self, n, k, schedule):
        model = LoopParallelModel(CellParams(), LLPConfig(schedule=schedule))
        task = make_task(iterations=n)
        inv = model.invoke(task, k)
        assert sum(inv.chunks) == n
        assert inv.duration > 0.0
        if inv.k > 1:
            assert inv.schedule == schedule
            assert len(inv.chunk_counts) == inv.k
            assert sum(inv.chunk_counts) >= inv.k  # >= one chunk per SPE

    def test_adaptive_feedback_reduces_join_idle(self):
        model = LoopParallelModel(CellParams(), LLPConfig(schedule="adaptive"))
        task = make_task()
        first = model.invoke(task, 4).join_idle
        last = first
        for _ in range(60):
            last = model.invoke(task, 4).join_idle
        assert last <= first


class TestStaticEquivalence:
    """schedule='static' must be bit-identical to the default config."""

    @pytest.mark.parametrize(
        "factory",
        [linux, edtlp, lambda **kw: static_hybrid(4, **kw), mgps],
        ids=["linux", "edtlp", "static_hybrid", "mgps"],
    )
    def test_explicit_static_matches_default(self, factory):
        wl = Workload(bootstraps=3, tasks_per_bootstrap=150, seed=0)
        default = run_experiment(factory(), wl)
        explicit = run_experiment(
            factory(llp_config=LLPConfig(schedule="static")), wl
        )
        assert explicit.result_digest == default.result_digest
        assert explicit.makespan == default.makespan
        assert explicit.offloads == default.offloads


class TestScheduleVisibility:
    @pytest.mark.parametrize("schedule", ["dynamic", "guided", "adaptive"])
    def test_schedule_recorded_in_trace(self, schedule):
        tracer = Tracer(enabled=True)
        wl = Workload(bootstraps=3, tasks_per_bootstrap=120, seed=0)
        result = run_experiment(
            static_hybrid(4, llp_config=LLPConfig(schedule=schedule)),
            wl, tracer=tracer,
        )
        assert result.llp_invocations > 0
        invokes = [r for r in tracer.records if r.event == "llp_invoke"]
        assert invokes, "no llp_invoke events traced"
        for r in invokes:
            assert r.get("schedule") == schedule
            counts = r.get("chunk_counts")
            assert counts and sum(counts) >= len(counts)

    def test_runs_complete_under_every_schedule(self):
        wl = Workload(bootstraps=3, tasks_per_bootstrap=100, seed=0)
        makespans = {}
        for schedule in SCHEDULE_NAMES:
            r = run_experiment(
                mgps(llp_config=LLPConfig(schedule=schedule)), wl
            )
            makespans[schedule] = r.makespan
            assert r.bootstraps_completed == 3
        assert all(m > 0 for m in makespans.values())
