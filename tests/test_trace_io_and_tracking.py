"""Tests for trace persistence, the Tracer, and BusyTracker."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim import BusyTracker, Tracer
from repro.workloads import (
    TraceBuilder,
    load_traces,
    save_traces,
    trace_from_dict,
    trace_to_dict,
)
from repro.workloads.synthetic import fine_grained_trace, uniform_trace


class TestTraceIO:
    def test_roundtrip_profile_trace(self, tmp_path):
        trace = TraceBuilder(seed=2).build(1, 60)
        path = tmp_path / "traces.json"
        save_traces([trace], path)
        loaded = load_traces(path)[0]
        assert loaded.items == trace.items
        assert loaded.scale == trace.scale
        assert loaded.tail_ppe == trace.tail_ppe
        assert loaded.code_image == trace.code_image
        assert loaded.llp_image == trace.llp_image

    def test_roundtrip_many_traces(self, tmp_path):
        traces = [uniform_trace(n_tasks=5, index=i) for i in range(3)]
        path = tmp_path / "many.json"
        save_traces(traces, path)
        loaded = load_traces(path)
        assert len(loaded) == 3
        assert [t.index for t in loaded] == [0, 1, 2]

    def test_loopless_tasks_roundtrip(self, tmp_path):
        trace = fine_grained_trace(n_tasks=4)
        d = trace_to_dict(trace)
        # drop the loop to exercise the None path
        for item in d["items"]:
            item["loop"] = None
        back = trace_from_dict(d)
        assert all(i.task.loop is None for i in back.items)

    def test_version_checked(self):
        trace = uniform_trace(n_tasks=2)
        d = trace_to_dict(trace)
        d["version"] = 99
        with pytest.raises(ValueError, match="version"):
            trace_from_dict(d)

    def test_loaded_trace_schedules_identically(self, tmp_path):
        from repro import edtlp, run_experiment
        from repro.workloads import FixedTraceWorkload

        trace = TraceBuilder(seed=4).build(0, 80)
        path = tmp_path / "t.json"
        save_traces([trace], path)
        wl1 = FixedTraceWorkload([trace])
        wl2 = FixedTraceWorkload(load_traces(path))
        r1 = run_experiment(edtlp(n_processes=1), wl1)
        r2 = run_experiment(edtlp(n_processes=1), wl2)
        assert r1.makespan == r2.makespan


class TestTracer:
    def test_disabled_tracer_records_nothing(self):
        t = Tracer(enabled=False)
        t.emit(0.0, "spe", "x", "ev")
        assert t.records == []

    def test_filter_by_fields(self):
        t = Tracer(enabled=True)
        t.emit(0.0, "spe", "a", "start")
        t.emit(1.0, "spe", "b", "start")
        t.emit(2.0, "ppe", "a", "stop")
        assert len(t.filter(category="spe")) == 2
        assert len(t.filter(actor="a")) == 2
        assert len(t.filter(event="start", actor="a")) == 1

    def test_record_payload_access(self):
        t = Tracer(enabled=True)
        t.emit(0.0, "c", "a", "e", value=42, name="x")
        rec = t.records[0]
        assert rec.get("value") == 42
        assert rec.get("missing", "dflt") == "dflt"

    def test_clear(self):
        t = Tracer(enabled=True)
        t.emit(0.0, "c", "a", "e")
        t.clear()
        assert t.records == []


class TestBusyTracker:
    def test_single_interval(self):
        b = BusyTracker()
        b.begin("x", 1.0)
        b.end("x", 3.0)
        assert b.busy_time("x") == pytest.approx(2.0)
        assert b.utilization("x", 4.0) == pytest.approx(0.5)

    def test_reentrant_intervals_count_once(self):
        b = BusyTracker()
        b.begin("x", 0.0)
        b.begin("x", 1.0)
        b.end("x", 2.0)
        b.end("x", 4.0)
        assert b.busy_time("x") == pytest.approx(4.0)

    def test_open_interval_with_now(self):
        b = BusyTracker()
        b.begin("x", 0.0)
        assert b.busy_time("x", now=2.5) == pytest.approx(2.5)

    def test_end_without_begin_is_error(self):
        b = BusyTracker()
        with pytest.raises(RuntimeError):
            b.end("x", 1.0)

    def test_mean_utilization(self):
        b = BusyTracker()
        b.begin("a", 0.0)
        b.end("a", 1.0)
        b.begin("b", 0.0)
        b.end("b", 3.0)
        assert b.mean_utilization(["a", "b"], 4.0) == pytest.approx(0.5)
        assert b.mean_utilization([], 4.0) == 0.0

    def test_actors_listing(self):
        b = BusyTracker()
        b.begin("z", 0.0)
        b.end("z", 1.0)
        b.begin("a", 0.0)
        assert b.actors() == ["a", "z"]

    @given(
        intervals=st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=100),
                st.floats(min_value=0, max_value=100),
            ).map(lambda p: (min(p), max(p))),
            min_size=1,
            max_size=20,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_disjoint_intervals_sum(self, intervals):
        # Sort and make strictly disjoint by offsetting.
        b = BusyTracker()
        offset = 0.0
        total = 0.0
        for lo, hi in intervals:
            start = offset
            end = offset + (hi - lo)
            b.begin("x", start)
            b.end("x", end)
            total += end - start
            offset = end + 1.0
        assert b.busy_time("x") == pytest.approx(total)
