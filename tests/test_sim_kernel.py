"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    EmptySchedule,
    Environment,
    Event,
    Gate,
    Interrupt,
    Resource,
    RngStreams,
    Store,
)


def test_clock_starts_at_zero():
    env = Environment()
    assert env.now == 0.0


def test_timeout_advances_clock():
    env = Environment()

    def proc():
        yield env.timeout(1.5)
        return env.now

    p = env.process(proc())
    assert env.run_until_complete(p) == 1.5


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1)


def test_timeout_carries_value():
    env = Environment()

    def proc():
        v = yield env.timeout(1, value="payload")
        return v

    assert env.run_until_complete(env.process(proc())) == "payload"


def test_sequential_timeouts_accumulate():
    env = Environment()

    def proc():
        yield env.timeout(1)
        yield env.timeout(2)
        yield env.timeout(3)
        return env.now

    assert env.run_until_complete(env.process(proc())) == 6.0


def test_processes_interleave_deterministically():
    env = Environment()
    log = []

    def proc(name, delay):
        yield env.timeout(delay)
        log.append((env.now, name))

    env.process(proc("b", 2))
    env.process(proc("a", 1))
    env.process(proc("c", 1))
    env.run()
    # Equal timestamps resolve in schedule order: "a" before "c".
    assert log == [(1, "a"), (1, "c"), (2, "b")]


def test_event_succeed_delivers_value():
    env = Environment()
    ev = env.event()

    def waiter():
        v = yield ev
        return v

    def firer():
        yield env.timeout(5)
        ev.succeed(42)

    p = env.process(waiter())
    env.process(firer())
    assert env.run_until_complete(p) == 42
    assert env.now == 5


def test_event_fail_raises_in_waiter():
    env = Environment()
    ev = env.event()

    def waiter():
        try:
            yield ev
        except ValueError as exc:
            return f"caught {exc}"

    def firer():
        yield env.timeout(1)
        ev.fail(ValueError("boom"))

    p = env.process(waiter())
    env.process(firer())
    assert env.run_until_complete(p) == "caught boom"


def test_event_cannot_trigger_twice():
    env = Environment()
    ev = env.event()
    ev.succeed(1)
    with pytest.raises(RuntimeError):
        ev.succeed(2)
    with pytest.raises(RuntimeError):
        ev.fail(ValueError())


def test_event_value_unavailable_until_triggered():
    env = Environment()
    ev = env.event()
    with pytest.raises(RuntimeError):
        _ = ev.value


def test_fail_requires_exception():
    env = Environment()
    with pytest.raises(TypeError):
        env.event().fail("not an exception")


def test_process_return_value():
    env = Environment()

    def proc():
        yield env.timeout(1)
        return "done"

    assert env.run_until_complete(env.process(proc())) == "done"


def test_process_waits_on_process():
    env = Environment()

    def child():
        yield env.timeout(3)
        return 7

    def parent():
        v = yield env.process(child())
        return v + 1

    assert env.run_until_complete(env.process(parent())) == 8


def test_process_yielding_non_event_is_error():
    env = Environment()

    def bad():
        yield 5

    env.process(bad())
    with pytest.raises(TypeError):
        env.run()


def test_process_exception_propagates_in_strict_mode():
    env = Environment(strict=True)

    def bad():
        yield env.timeout(1)
        raise RuntimeError("kaboom")

    env.process(bad())
    with pytest.raises(RuntimeError, match="kaboom"):
        env.run()


def test_process_exception_captured_when_not_strict():
    env = Environment(strict=False)

    def bad():
        yield env.timeout(1)
        raise RuntimeError("kaboom")

    p = env.process(bad())
    env.run()
    assert p.triggered and not p.ok
    assert isinstance(p.value, RuntimeError)


def test_interrupt_delivers_cause():
    env = Environment()

    def victim():
        try:
            yield env.timeout(100)
        except Interrupt as i:
            return ("interrupted", i.cause, env.now)

    def attacker(p):
        yield env.timeout(2)
        p.interrupt("reason")

    p = env.process(victim())
    env.process(attacker(p))
    assert env.run_until_complete(p) == ("interrupted", "reason", 2)


def test_interrupt_finished_process_is_error():
    env = Environment()

    def quick():
        yield env.timeout(1)

    p = env.process(quick())
    env.run()
    with pytest.raises(RuntimeError):
        p.interrupt()


def test_all_of_collects_values_in_order():
    env = Environment()
    e1, e2 = env.event(), env.event()

    def firer():
        yield env.timeout(1)
        e2.succeed("second")
        yield env.timeout(1)
        e1.succeed("first")

    def waiter():
        vals = yield env.all_of([e1, e2])
        return vals

    env.process(firer())
    p = env.process(waiter())
    assert env.run_until_complete(p) == ("first", "second")
    assert env.now == 2


def test_any_of_returns_first_event():
    env = Environment()
    e1, e2 = env.event(), env.event()

    def firer():
        yield env.timeout(1)
        e2.succeed("fast")

    def waiter():
        winner = yield env.any_of([e1, e2])
        return winner.value

    env.process(firer())
    p = env.process(waiter())
    assert env.run_until_complete(p) == "fast"


def test_all_of_empty_is_immediate():
    env = Environment()

    def waiter():
        v = yield env.all_of([])
        return v

    assert env.run_until_complete(env.process(waiter())) == ()


def test_run_until_limits_clock():
    env = Environment()

    def proc():
        yield env.timeout(100)

    env.process(proc())
    assert env.run(until=10) == 10
    assert env.now == 10


def test_run_until_in_past_rejected():
    env = Environment(initial_time=5)
    with pytest.raises(ValueError):
        env.run(until=1)


def test_step_on_empty_schedule():
    env = Environment()
    with pytest.raises(EmptySchedule):
        env.step()


def test_deadlock_detection():
    env = Environment()

    def stuck():
        yield env.event()  # never fires

    p = env.process(stuck())
    with pytest.raises(RuntimeError, match="deadlock"):
        env.run_until_complete(p)


class TestResource:
    def test_fifo_granting(self):
        env = Environment()
        res = Resource(env, capacity=1)
        order = []

        def user(name, hold):
            req = yield res.request()
            order.append((env.now, name, "got"))
            yield env.timeout(hold)
            res.release(req)

        env.process(user("a", 5))
        env.process(user("b", 5))
        env.process(user("c", 5))
        env.run()
        assert order == [(0, "a", "got"), (5, "b", "got"), (10, "c", "got")]

    def test_capacity_respected(self):
        env = Environment()
        res = Resource(env, capacity=2)
        peak = []

        def user():
            req = yield res.request()
            peak.append(res.in_use)
            yield env.timeout(1)
            res.release(req)

        for _ in range(5):
            env.process(user())
        env.run()
        assert max(peak) == 2
        assert res.in_use == 0

    def test_priority_order(self):
        env = Environment()
        res = Resource(env, capacity=1)
        order = []

        def holder():
            req = yield res.request()
            yield env.timeout(10)
            res.release(req)

        def user(name, prio, t):
            yield env.timeout(t)
            req = yield res.request(priority=prio)
            order.append(name)
            res.release(req)

        env.process(holder())
        env.process(user("low", 5, 1))
        env.process(user("high", 1, 2))
        env.run()
        assert order == ["high", "low"]

    def test_cancel_pending_request(self):
        env = Environment()
        res = Resource(env, capacity=1)
        granted = []

        def holder():
            req = yield res.request()
            yield env.timeout(10)
            res.release(req)

        def canceller():
            yield env.timeout(1)
            req = res.request()
            yield env.timeout(1)
            req.cancel()

        def user():
            yield env.timeout(3)
            req = yield res.request()
            granted.append(env.now)
            res.release(req)

        env.process(holder())
        env.process(canceller())
        env.process(user())
        env.run()
        assert granted == [10]

    def test_release_ungranted_is_error(self):
        env = Environment()
        res = Resource(env)
        req = res.request()  # granted immediately
        res.release(req)
        req2 = Resource(env).request()
        # a never-granted request from a full resource
        full = Resource(env, capacity=1)
        r1 = full.request()
        r2 = full.request()
        with pytest.raises(RuntimeError):
            full.release(r2)

    def test_invalid_capacity(self):
        env = Environment()
        with pytest.raises(ValueError):
            Resource(env, capacity=0)


class TestStore:
    def test_put_then_get(self):
        env = Environment()
        store = Store(env)
        store.put("x")

        def getter():
            v = yield store.get()
            return v

        assert env.run_until_complete(env.process(getter())) == "x"

    def test_get_blocks_until_put(self):
        env = Environment()
        store = Store(env)

        def getter():
            v = yield store.get()
            return (env.now, v)

        def putter():
            yield env.timeout(4)
            store.put("late")

        p = env.process(getter())
        env.process(putter())
        assert env.run_until_complete(p) == (4, "late")

    def test_fifo_item_order(self):
        env = Environment()
        store = Store(env)
        for i in range(3):
            store.put(i)
        got = []

        def getter():
            for _ in range(3):
                v = yield store.get()
                got.append(v)

        env.run_until_complete(env.process(getter()))
        assert got == [0, 1, 2]

    def test_fair_getter_matching(self):
        env = Environment()
        store = Store(env)
        got = []

        def getter(name):
            v = yield store.get()
            got.append((name, v))

        env.process(getter("first"))
        env.process(getter("second"))

        def putter():
            yield env.timeout(1)
            store.put("a")
            store.put("b")

        env.process(putter())
        env.run()
        assert got == [("first", "a"), ("second", "b")]

    def test_try_get(self):
        env = Environment()
        store = Store(env)
        assert store.try_get() is None
        store.put(9)
        assert store.try_get() == 9
        assert len(store) == 0


class TestGate:
    def test_fire_releases_all_waiters(self):
        env = Environment()
        gate = Gate(env)
        woke = []

        def waiter(name):
            v = yield gate.wait()
            woke.append((name, v, env.now))

        env.process(waiter("a"))
        env.process(waiter("b"))

        def firer():
            yield env.timeout(2)
            n = gate.fire("go")
            assert n == 2

        env.process(firer())
        env.run()
        assert woke == [("a", "go", 2), ("b", "go", 2)]

    def test_gate_is_reusable(self):
        env = Environment()
        gate = Gate(env)
        woke = []

        def waiter():
            yield gate.wait()
            woke.append(env.now)
            yield gate.wait()
            woke.append(env.now)

        def firer():
            yield env.timeout(1)
            gate.fire()
            yield env.timeout(1)
            gate.fire()

        env.process(waiter())
        env.process(firer())
        env.run()
        assert woke == [1, 2]


class TestRngStreams:
    def test_same_seed_same_stream(self):
        a = RngStreams(7).stream("x").random(5)
        b = RngStreams(7).stream("x").random(5)
        assert (a == b).all()

    def test_different_names_differ(self):
        r = RngStreams(7)
        a = r.stream("x").random(5)
        b = r.stream("y").random(5)
        assert not (a == b).all()

    def test_stream_is_cached(self):
        r = RngStreams(7)
        assert r.stream("x") is r.stream("x")

    def test_spawn_derives_independent_seed(self):
        r = RngStreams(7)
        child = r.spawn("p0")
        assert child.seed != r.seed
        a = child.stream("x").random(3)
        b = RngStreams(7).spawn("p0").stream("x").random(3)
        assert (a == b).all()

    def test_non_int_seed_rejected(self):
        with pytest.raises(TypeError):
            RngStreams("seed")


class TestCalendarKernel:
    """Edge cases of the bucketed calendar, Timeout pool and batched loop."""

    def test_bucket_seam_preserves_order_across_refills(self):
        # 200 far-heap entries with 40-way timestamp ties: the refill
        # batch boundary (64 entries) falls *inside* a tie group, so the
        # tie-extension rule must pull the rest of the group across the
        # seam for (time, seq) FIFO order to survive the promotion.
        env = Environment()
        fired = []
        n = 200
        for i in range(n):
            t = env.timeout(float((i % 5) + 1))
            t.add_callback(lambda ev, i=i: fired.append((env.now, i)))
        env.run()
        expected = sorted(range(n), key=lambda i: ((i % 5) + 1, i))
        assert [i for _, i in fired] == expected
        assert all(now == float((i % 5) + 1) for now, i in fired)
        assert env.kernel_stats()["calendar_refills"] >= 2

    def test_timeout_pool_reincarnation_is_clean(self):
        env = Environment()
        first_life = []
        t1 = env.timeout(1.0, value="ghost")
        t1.add_callback(lambda ev: first_life.append(ev.value))
        ident = id(t1)
        env.run()
        assert first_life == ["ghost"]
        # Drop the only outside reference; the free list may now reuse
        # the instance (it stays alive in the pool, so the id is stable).
        del t1
        t2 = env.timeout(2.0)
        assert id(t2) == ident
        assert env.kernel_stats()["pool_hit_rate"] > 0.0
        # The reincarnation carries nothing over from its first life.
        assert t2._value is None
        assert t2._cb0 is None and t2.callbacks is None
        assert not t2.processed and t2._scheduled
        second_life = []
        t2.add_callback(lambda ev: second_life.append(ev.value))
        env.run()
        assert second_life == [None]
        assert first_life == ["ghost"]  # first-life callback never re-fired

    def test_deadlock_raised_mid_batch(self):
        # The inlined batched loop must still detect the stall — and
        # restore the garbage collector on the exception path.
        import gc

        env = Environment()

        def noise():
            for _ in range(10):
                yield env.timeout(1.0)

        def stuck():
            yield env.timeout(1.0)
            yield env.event()  # never fires

        env.process(noise())
        p = env.process(stuck())
        with pytest.raises(RuntimeError, match="deadlock"):
            env.run_until_complete(p)
        assert env.events_processed > 10  # noise drained before the stall
        assert gc.isenabled()

    def test_step_after_batched_drain_raises_empty(self):
        env = Environment()

        def proc():
            yield env.timeout(1.0)

        env.run_until_complete(env.process(proc()))
        with pytest.raises(EmptySchedule):
            env.step()
