"""Tests for substitution models: stochasticity, reversibility, limits."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.phylo.models import (
    SubstitutionModel,
    discrete_gamma_rates,
    gtr,
    hky,
    jc69,
)


positive_freqs = st.lists(
    st.floats(min_value=0.05, max_value=1.0), min_size=4, max_size=4
)
positive_rates = st.lists(
    st.floats(min_value=0.1, max_value=10.0), min_size=6, max_size=6
)
branch_lengths = st.floats(min_value=0.0, max_value=5.0)


class TestConstruction:
    def test_frequencies_normalized(self):
        m = gtr((2, 1, 1, 2), np.ones(6))
        assert m.frequencies.sum() == pytest.approx(1.0)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            gtr((1, 1, 1), np.ones(6))
        with pytest.raises(ValueError):
            gtr((1, 1, 1, -1), np.ones(6))
        with pytest.raises(ValueError):
            gtr((1, 1, 1, 1), np.ones(5))
        with pytest.raises(ValueError):
            gtr((1, 1, 1, 1), [-1, 1, 1, 1, 1, 1])
        with pytest.raises(ValueError):
            hky(kappa=0)

    def test_jc69_is_uniform(self):
        m = jc69()
        assert np.allclose(m.frequencies, 0.25)
        p = m.transition_matrix(0.5)
        # All off-diagonal entries equal under JC69.
        off = p[~np.eye(4, dtype=bool)]
        assert np.allclose(off, off[0])


class TestTransitionMatrices:
    def test_rows_sum_to_one(self):
        m = hky((0.3, 0.2, 0.2, 0.3), 2.0)
        for t in (0.0, 0.01, 0.1, 1.0, 10.0):
            p = m.transition_matrix(t)
            assert np.allclose(p.sum(axis=1), 1.0)

    def test_zero_branch_is_identity(self):
        m = hky()
        assert np.allclose(m.transition_matrix(0.0), np.eye(4))

    def test_long_branch_reaches_stationarity(self):
        m = hky((0.4, 0.1, 0.2, 0.3), 3.0)
        p = m.transition_matrix(50.0)
        for row in p:
            assert np.allclose(row, m.frequencies, atol=1e-8)

    def test_detailed_balance(self):
        # Reversibility: pi_i P_ij(t) == pi_j P_ji(t).
        m = gtr((0.35, 0.15, 0.25, 0.25), (1, 2, 0.5, 1.2, 3, 0.8))
        p = m.transition_matrix(0.37)
        flux = m.frequencies[:, None] * p
        assert np.allclose(flux, flux.T)

    def test_chapman_kolmogorov(self):
        # P(s) P(t) == P(s + t).
        m = hky((0.3, 0.2, 0.2, 0.3), 2.0)
        ps, pt = m.transition_matrix(0.2), m.transition_matrix(0.3)
        assert np.allclose(ps @ pt, m.transition_matrix(0.5))

    def test_mean_rate_normalized(self):
        # -sum_i pi_i Q_ii == 1: expected one substitution per unit length.
        m = gtr((0.3, 0.2, 0.2, 0.3), (1, 2, 1, 1, 2, 1))
        t = 1e-6
        p = m.transition_matrix(t)
        rate = (m.frequencies * (1 - np.diag(p))).sum() / t
        assert rate == pytest.approx(1.0, rel=1e-3)

    def test_vectorized_matches_scalar(self):
        m = hky()
        ts = np.array([0.1, 0.2, 0.7])
        batch = m.transition_matrices(ts)
        for i, t in enumerate(ts):
            assert np.allclose(batch[i], m.transition_matrix(t))

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            hky().transition_matrix(-0.1)

    @given(freqs=positive_freqs, rates=positive_rates, t=branch_lengths)
    @settings(max_examples=50, deadline=None)
    def test_stochastic_for_any_model(self, freqs, rates, t):
        m = gtr(freqs, rates)
        p = m.transition_matrix(t)
        assert np.all(p >= 0)
        assert np.allclose(p.sum(axis=1), 1.0, atol=1e-9)


class TestDerivatives:
    def test_first_derivative_matches_finite_difference(self):
        m = hky((0.3, 0.2, 0.2, 0.3), 2.0)
        t, h = 0.3, 1e-6
        _, d1, _ = m.transition_derivatives(t)
        fd = (m.transition_matrix(t + h) - m.transition_matrix(t - h)) / (2 * h)
        assert np.allclose(d1[0], fd, atol=1e-6)

    def test_second_derivative_matches_finite_difference(self):
        m = hky((0.3, 0.2, 0.2, 0.3), 2.0)
        t, h = 0.3, 1e-4
        _, _, d2 = m.transition_derivatives(t)
        fd = (
            m.transition_matrix(t + h)
            - 2 * m.transition_matrix(t)
            + m.transition_matrix(t - h)
        ) / h**2
        assert np.allclose(d2[0], fd, atol=1e-4)

    def test_rate_scaling_of_derivatives(self):
        m = jc69()
        rates = np.array([0.5, 2.0])
        p, d1, _ = m.transition_derivatives(0.2, rates)
        # dP_r/dt at t is r * Q exp(Q r t): category with double rate has
        # derivative equal to 2x the derivative at scaled time.
        p_slow, d_slow, _ = m.transition_derivatives(0.1, np.array([1.0]))
        assert np.allclose(p[0], m.transition_matrix(0.1))
        assert np.allclose(d1[0], 0.5 * d_slow[0])


class TestGammaRates:
    def test_mean_is_one(self):
        for alpha in (0.1, 0.5, 1.0, 5.0):
            rates = discrete_gamma_rates(alpha, 4)
            assert rates.mean() == pytest.approx(1.0)

    def test_rates_increase(self):
        rates = discrete_gamma_rates(0.5, 4)
        assert np.all(np.diff(rates) > 0)

    def test_small_alpha_is_more_heterogeneous(self):
        spread_small = np.ptp(discrete_gamma_rates(0.2, 4))
        spread_large = np.ptp(discrete_gamma_rates(5.0, 4))
        assert spread_small > spread_large

    def test_single_category(self):
        assert discrete_gamma_rates(0.5, 1) == pytest.approx(1.0)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            discrete_gamma_rates(0.0)
        with pytest.raises(ValueError):
            discrete_gamma_rates(1.0, 0)
