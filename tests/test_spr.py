"""Tests for subtree-prune-and-regraft moves and the SPR search."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.phylo import LikelihoodEngine, Tree, hill_climb, jc69, synthesize_alignment
from repro.phylo.bootstrap import _bipartitions


def random_tree(n=8, seed=0):
    return Tree.random_topology(n, np.random.default_rng(seed))


class TestSPRMove:
    def test_preserves_leaf_set_and_arity(self):
        tree = random_tree()
        sub_id, tgt_id = tree.spr_neighbourhood()[0]
        tree.spr(tree.find(sub_id), tree.find(tgt_id))
        assert sorted(l.taxon for l in tree.leaves()) == list(range(8))
        assert len(tree.root.children) == 3
        for n in tree.nodes():
            if not n.is_leaf and n.parent is not None:
                assert len(n.children) == 2

    def test_changes_topology(self):
        tree = random_tree()
        before = _bipartitions(tree)
        # Find a move that actually changes the splits (most do).
        changed = False
        for sub_id, tgt_id in tree.spr_neighbourhood():
            cand = tree.copy()
            cand.spr(cand.find(sub_id), cand.find(tgt_id))
            if _bipartitions(cand) != before:
                changed = True
                break
        assert changed

    def test_conserves_total_node_count(self):
        tree = random_tree()
        n_before = len(tree.nodes())
        sub_id, tgt_id = tree.spr_neighbourhood()[5]
        tree.spr(tree.find(sub_id), tree.find(tgt_id))
        assert len(tree.nodes()) == n_before

    def test_rejects_root_prunes(self):
        tree = random_tree()
        with pytest.raises(ValueError):
            tree.spr(tree.root, tree.leaves()[0])
        # a child of the trifurcating root
        child = tree.root.children[0]
        other = [n for n in tree.branches() if n is not child][0]
        with pytest.raises(ValueError):
            tree.spr(child, other)

    def test_rejects_target_inside_subtree(self):
        tree = random_tree()
        sub = next(
            n for n in tree.postorder()
            if not n.is_leaf and n.parent is not None
            and n.parent.parent is not None
        )
        inner = sub.children[0]
        with pytest.raises(ValueError):
            tree.spr(sub, inner)

    def test_rejects_sibling_target(self):
        tree = random_tree()
        sub = next(
            n for n in tree.postorder()
            if n.parent is not None and n.parent.parent is not None
        )
        sibling = [c for c in sub.parent.children if c is not sub][0]
        with pytest.raises(ValueError):
            tree.spr(sub, sibling)

    def test_neighbourhood_moves_all_valid(self):
        tree = random_tree(n=7, seed=3)
        for sub_id, tgt_id in tree.spr_neighbourhood():
            cand = tree.copy()
            cand.spr(cand.find(sub_id), cand.find(tgt_id))  # must not raise

    def test_neighbourhood_truncation(self):
        tree = random_tree()
        assert len(tree.spr_neighbourhood(max_moves=5)) == 5

    @given(seed=st.integers(min_value=0, max_value=100),
           n=st.integers(min_value=4, max_value=12))
    @settings(max_examples=40, deadline=None)
    def test_spr_invariants_random(self, seed, n):
        tree = random_tree(n=n, seed=seed)
        moves = tree.spr_neighbourhood()
        if not moves:
            return
        rng = np.random.default_rng(seed)
        sub_id, tgt_id = moves[rng.integers(len(moves))]
        total_before = tree.total_branch_length()
        tree.spr(tree.find(sub_id), tree.find(tgt_id))
        assert sorted(l.taxon for l in tree.leaves()) == list(range(n))
        # SPR conserves total branch length (the split branch halves).
        assert tree.total_branch_length() == pytest.approx(total_before)


class TestSPRSearch:
    def test_spr_never_worse_than_start(self):
        aln = synthesize_alignment(7, 120, seed=1)
        eng = LikelihoodEngine(aln, jc69(), 1)
        start = random_tree(n=7, seed=1)
        start_lik = eng.evaluate(start)
        res = hill_climb(eng, start, max_rounds=2, move_set="spr",
                         max_spr_moves=40)
        assert res.loglik >= start_lik

    def test_spr_at_least_matches_nni(self):
        """SPR's neighbourhood contains NNI, so greedy SPR can't end in a
        worse local optimum after the same number of rounds."""
        aln = synthesize_alignment(7, 150, seed=2)
        start = random_tree(n=7, seed=2)
        nni = hill_climb(
            LikelihoodEngine(aln, jc69(), 1), start, max_rounds=3
        )
        spr = hill_climb(
            LikelihoodEngine(aln, jc69(), 1), start, max_rounds=3,
            move_set="spr",
        )
        assert spr.loglik >= nni.loglik - 1e-6

    def test_invalid_move_set(self):
        aln = synthesize_alignment(5, 60, seed=3)
        eng = LikelihoodEngine(aln, jc69(), 1)
        with pytest.raises(ValueError):
            hill_climb(eng, random_tree(5, 3), move_set="tbr")
