"""Tests for alignments, trees and the likelihood kernels."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.phylo import (
    Alignment,
    LikelihoodEngine,
    Tree,
    bootstrap_weights,
    hky,
    jc69,
    synthesize_alignment,
)
from repro.phylo.likelihood import MAX_BRANCH, MIN_BRANCH


class TestAlignment:
    def test_from_sequences_compresses_patterns(self):
        aln = Alignment.from_sequences(
            ["a", "b"], ["AACCA", "AAGGA"]
        )
        # Columns: AA x3 (pos 0,1,4), CG x2 -> 2 patterns.
        assert aln.n_patterns == 2
        assert aln.n_sites == 5
        assert aln.n_taxa == 2

    def test_roundtrip_sequences(self):
        seqs = ["ACGTAC", "ACGTAA", "TTGTAA"]
        aln = Alignment.from_sequences(["x", "y", "z"], seqs)
        back = aln.to_sequences()
        # Site order may permute under compression; content is preserved.
        for orig, rec in zip(seqs, back):
            assert sorted(orig) == sorted(rec)

    def test_column_integrity_preserved(self):
        seqs = ["ACGT", "TGCA", "AAAA"]
        aln = Alignment.from_sequences(["x", "y", "z"], seqs)
        orig_cols = sorted("".join(s[i] for s in seqs) for i in range(4))
        rec = aln.to_sequences()
        rec_cols = sorted("".join(s[i] for s in rec) for i in range(4))
        assert orig_cols == rec_cols

    def test_validation(self):
        with pytest.raises(ValueError):
            Alignment.from_sequences(["a"], ["ACGT", "ACGT"])
        with pytest.raises(ValueError):
            Alignment.from_sequences(["a", "b"], ["ACG", "ACGT"])
        with pytest.raises(ValueError):
            Alignment.from_sequences(["a"], ["ACG1"])  # not a molecule
        with pytest.raises(ValueError):
            Alignment.from_sequences([], [])
        with pytest.raises(ValueError):
            Alignment.from_sequences(["a"], ["ACGT"], alphabet="rna")

    def test_synthesized_shape_matches_42sc(self):
        aln = synthesize_alignment(n_taxa=42, n_sites=1167, seed=0)
        assert aln.n_taxa == 42
        assert aln.n_sites == 1167
        assert 1 <= aln.n_patterns <= 1167

    def test_synthesis_deterministic(self):
        a = synthesize_alignment(n_taxa=6, n_sites=50, seed=3)
        b = synthesize_alignment(n_taxa=6, n_sites=50, seed=3)
        assert np.array_equal(a.patterns, b.patterns)
        assert np.array_equal(a.weights, b.weights)

    def test_bootstrap_weights_preserve_site_count(self):
        aln = synthesize_alignment(n_taxa=6, n_sites=100, seed=0)
        rng = np.random.default_rng(1)
        w = bootstrap_weights(aln, rng)
        assert w.sum() == aln.n_sites
        assert (w >= 0).all()

    def test_bootstrap_weights_differ_between_draws(self):
        aln = synthesize_alignment(n_taxa=6, n_sites=100, seed=0)
        rng = np.random.default_rng(1)
        assert not np.array_equal(
            bootstrap_weights(aln, rng), bootstrap_weights(aln, rng)
        )


class TestTree:
    def test_random_topology_structure(self):
        rng = np.random.default_rng(0)
        tree = Tree.random_topology(10, rng)
        leaves = tree.leaves()
        assert len(leaves) == 10
        assert sorted(l.taxon for l in leaves) == list(range(10))
        # Unrooted binary: root trifurcating, internals bifurcating.
        assert len(tree.root.children) == 3
        for n in tree.nodes():
            if not n.is_leaf and n.parent is not None:
                assert len(n.children) == 2

    def test_postorder_children_before_parents(self):
        rng = np.random.default_rng(1)
        tree = Tree.random_topology(8, rng)
        seen = set()
        for node in tree.postorder():
            for child in node.children:
                assert child.id in seen
            seen.add(node.id)

    def test_copy_is_deep(self):
        rng = np.random.default_rng(2)
        tree = Tree.random_topology(6, rng)
        clone = tree.copy()
        clone.find(clone.branches()[0].id).length = 99.0
        assert tree.branches()[0].length != 99.0

    def test_nni_preserves_leaf_set(self):
        rng = np.random.default_rng(3)
        tree = Tree.random_topology(8, rng)
        before = sorted(l.taxon for l in tree.leaves())
        branch_id, variant = tree.nni_neighbourhood()[0]
        tree.nni(tree.find(branch_id), variant)
        assert sorted(l.taxon for l in tree.leaves()) == before

    def test_nni_changes_topology(self):
        rng = np.random.default_rng(4)
        tree = Tree.random_topology(8, rng)
        before = tree.newick()
        branch_id, variant = tree.nni_neighbourhood()[0]
        tree.nni(tree.find(branch_id), variant)
        assert tree.newick() != before

    def test_nni_rejects_leaf_and_root(self):
        rng = np.random.default_rng(5)
        tree = Tree.random_topology(6, rng)
        with pytest.raises(ValueError):
            tree.nni(tree.leaves()[0], 0)
        with pytest.raises(ValueError):
            tree.nni(tree.root, 0)

    def test_newick_contains_all_taxa(self):
        rng = np.random.default_rng(6)
        tree = Tree.random_topology(5, rng)
        nwk = tree.newick(names=[f"sp{i}" for i in range(5)])
        assert nwk.endswith(";")
        for i in range(5):
            assert f"sp{i}" in nwk

    def test_minimum_taxa(self):
        with pytest.raises(ValueError):
            Tree.random_topology(2, np.random.default_rng(0))


def brute_force_loglik(tree, aln, model):
    """Exhaustive sum over all internal-state assignments."""
    nodes = tree.nodes()
    internals = [n for n in nodes if not n.is_leaf]
    total = 0.0
    pmats = {
        n.id: model.transition_matrix(n.length)
        for n in nodes
        if n.parent is not None
    }
    for pat, w in zip(aln.patterns.T, aln.weights):
        lik = 0.0
        for states in itertools.product(range(4), repeat=len(internals)):
            sdict = {n.id: s for n, s in zip(internals, states)}
            for leaf in tree.leaves():
                sdict[leaf.id] = pat[leaf.taxon]
            p = model.frequencies[sdict[tree.root.id]]
            for n in nodes:
                if n.parent is not None:
                    p *= pmats[n.id][sdict[n.parent.id], sdict[n.id]]
            lik += p
        total += w * np.log(lik)
    return total


class TestLikelihood:
    def test_matches_brute_force_single_rate(self):
        aln = Alignment.from_sequences(
            ["a", "b", "c", "d"], ["ACGT", "ACGA", "GCGT", "GTGA"]
        )
        model = hky((0.3, 0.2, 0.2, 0.3), 2.0)
        tree = Tree.random_topology(4, np.random.default_rng(0))
        eng = LikelihoodEngine(aln, model, n_rate_categories=1)
        assert eng.evaluate(tree) == pytest.approx(
            brute_force_loglik(tree, aln, model)
        )

    def test_matches_brute_force_five_taxa(self):
        aln = Alignment.from_sequences(
            ["a", "b", "c", "d", "e"],
            ["ACGTA", "ACGAA", "GCGTT", "GTGAC", "TTGAC"],
        )
        model = jc69()
        tree = Tree.random_topology(5, np.random.default_rng(7))
        eng = LikelihoodEngine(aln, model, n_rate_categories=1)
        assert eng.evaluate(tree) == pytest.approx(
            brute_force_loglik(tree, aln, model)
        )

    def test_gamma_rates_mix_likelihoods(self):
        aln = Alignment.from_sequences(
            ["a", "b", "c", "d"], ["ACGT", "ACGA", "GCGT", "GTGA"]
        )
        model = hky()
        tree = Tree.random_topology(4, np.random.default_rng(0))
        l1 = LikelihoodEngine(aln, model, n_rate_categories=1).evaluate(tree)
        l4 = LikelihoodEngine(aln, model, 4, alpha=0.5).evaluate(tree)
        assert l1 != pytest.approx(l4)

    def test_loglik_is_weight_linear(self):
        aln = synthesize_alignment(6, 60, seed=0)
        model = hky()
        tree = Tree.random_topology(6, np.random.default_rng(1))
        eng = LikelihoodEngine(aln, model, 1)
        base = eng.evaluate(tree)
        doubled = LikelihoodEngine(
            aln.with_weights(aln.weights * 2), model, 1
        ).evaluate(tree)
        assert doubled == pytest.approx(2 * base)

    def test_underflow_scaling_on_deep_tree(self):
        # Long chain of taxa: per-site likelihoods underflow without
        # scaling; with scaling the result stays finite and correct-ish.
        aln = synthesize_alignment(40, 30, seed=2)
        model = jc69()
        tree = Tree.random_topology(40, np.random.default_rng(2),
                                    mean_branch=3.0)
        eng = LikelihoodEngine(aln, model, 1)
        ll = eng.evaluate(tree)
        assert np.isfinite(ll)
        assert ll < 0

    def test_edge_loglik_consistent_with_evaluate(self):
        aln = synthesize_alignment(7, 80, seed=3)
        model = hky()
        tree = Tree.random_topology(7, np.random.default_rng(3))
        eng = LikelihoodEngine(aln, model, 2)
        full = eng.evaluate(tree)
        eng.full_traversal(tree)
        for node in tree.branches()[:5]:
            assert eng.edge_loglik(tree, node, node.length) == pytest.approx(
                full, rel=1e-9
            )

    def test_makenewz_never_decreases_loglik(self):
        aln = synthesize_alignment(6, 100, seed=4)
        model = hky()
        tree = Tree.random_topology(6, np.random.default_rng(4))
        eng = LikelihoodEngine(aln, model, 2)
        before = eng.evaluate(tree)
        eng.full_traversal(tree)
        node = tree.branches()[2]
        eng.makenewz(tree, node)
        after = eng.evaluate(tree, full=True)
        assert after >= before - 1e-6

    def test_makenewz_finds_stationary_point(self):
        aln = synthesize_alignment(5, 150, seed=5)
        model = jc69()
        tree = Tree.random_topology(5, np.random.default_rng(5))
        eng = LikelihoodEngine(aln, model, 1)
        eng.full_traversal(tree)
        node = tree.branches()[0]
        t_opt = eng.makenewz(tree, node)
        # Perturbing the optimized length in either direction is worse.
        up = eng.edge_loglik(tree, node, min(t_opt * 1.1 + 1e-5, MAX_BRANCH))
        down = eng.edge_loglik(tree, node, max(t_opt * 0.9, MIN_BRANCH))
        at = eng.edge_loglik(tree, node, t_opt)
        assert at >= up - 1e-7
        assert at >= down - 1e-7

    def test_makenewz_respects_bounds(self):
        aln = synthesize_alignment(5, 40, seed=6)
        eng = LikelihoodEngine(aln, jc69(), 1)
        tree = Tree.random_topology(5, np.random.default_rng(6))
        eng.full_traversal(tree)
        for node in tree.branches():
            t = eng.makenewz(tree, node)
            assert MIN_BRANCH <= t <= MAX_BRANCH
            eng.full_traversal(tree)

    def test_optimize_branches_improves(self):
        aln = synthesize_alignment(6, 120, seed=7)
        eng = LikelihoodEngine(aln, hky(), 2)
        tree = Tree.random_topology(6, np.random.default_rng(7))
        before = eng.evaluate(tree)
        after = eng.optimize_branches(tree, passes=1)
        assert after >= before

    def test_kernel_log_counts(self):
        aln = synthesize_alignment(5, 40, seed=8)
        eng = LikelihoodEngine(aln, jc69(), 1)
        tree = Tree.random_topology(5, np.random.default_rng(8))
        eng.evaluate(tree)
        # 4 internal nodes at 5 taxa (root + 3) -> 3 non-root internal +
        # root = 4 newview calls... count deterministically:
        internals = sum(1 for n in tree.nodes() if not n.is_leaf)
        assert eng.log.newview_calls == internals
        assert eng.log.evaluate_calls == 1

    def test_kernel_log_records_events_when_enabled(self):
        aln = synthesize_alignment(5, 40, seed=9)
        eng = LikelihoodEngine(aln, jc69(), 1)
        eng.log.record = True
        tree = Tree.random_topology(5, np.random.default_rng(9))
        eng.evaluate(tree)
        assert all(k == "newview" for k, _ in eng.log.events[:-1])
        assert eng.log.events[-1][0] == "evaluate"
        assert all(p == aln.n_patterns for _, p in eng.log.events)

    def test_newview_on_leaf_rejected(self):
        aln = synthesize_alignment(5, 40, seed=10)
        eng = LikelihoodEngine(aln, jc69(), 1)
        tree = Tree.random_topology(5, np.random.default_rng(10))
        with pytest.raises(ValueError):
            eng.newview(tree.leaves()[0])


class TestPartialRefresh:
    def test_refresh_matches_full_recompute(self):
        from repro.phylo import synthesize_alignment, hky
        import numpy as np

        aln = synthesize_alignment(10, 150, seed=11)
        tree = Tree.random_topology(10, np.random.default_rng(11))
        eng = LikelihoodEngine(aln, hky(), 2)
        eng.full_traversal(tree)
        node = tree.branches()[4]
        node.length *= 2.0
        eng.refresh_ancestors(tree, node)
        partial = eng.evaluate(tree, full=False)
        assert partial == pytest.approx(eng.evaluate(tree, full=True))

    def test_refresh_touches_only_root_path(self):
        from repro.phylo import synthesize_alignment, jc69
        import numpy as np

        aln = synthesize_alignment(12, 80, seed=12)
        tree = Tree.random_topology(12, np.random.default_rng(12))
        eng = LikelihoodEngine(aln, jc69(), 1)
        eng.full_traversal(tree)
        node = tree.branches()[0]
        before = eng.log.newview_calls
        touched = eng.refresh_ancestors(tree, node)
        assert eng.log.newview_calls - before == touched
        # Path length is at most the number of internal nodes.
        internals = sum(1 for n in tree.nodes() if not n.is_leaf)
        assert 1 <= touched <= internals

    def test_optimize_branches_cheaper_than_quadratic(self):
        from repro.phylo import synthesize_alignment, jc69
        import numpy as np

        aln = synthesize_alignment(16, 100, seed=13)
        tree = Tree.random_topology(16, np.random.default_rng(13))
        eng = LikelihoodEngine(aln, jc69(), 1)
        eng.optimize_branches(tree, passes=1)
        n_branches = len(tree.branches())
        internals = sum(1 for n in tree.nodes() if not n.is_leaf)
        # One full traversal + per-branch root paths << n_branches * internals.
        assert eng.log.newview_calls < 0.8 * n_branches * internals
