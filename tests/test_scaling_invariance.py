"""Trace-compression validity: results must be stable across the
``tasks_per_bootstrap`` knob.

The whole benchmark methodology rests on this: simulating N off-loads and
scaling by ``267k/N`` must give (nearly) the same paper-scale makespan
regardless of N, because the off-load stream is stationary.  These tests
pin that property for every scheduler.
"""

import pytest

from repro import Workload, edtlp, linux, mgps, run_experiment, static_hybrid


def makespans(spec, bootstraps, sizes):
    out = []
    for n in sizes:
        wl = Workload(bootstraps=bootstraps, tasks_per_bootstrap=n)
        out.append(run_experiment(spec, wl).makespan)
    return out


@pytest.mark.parametrize(
    "spec_factory,bootstraps",
    [
        (lambda: edtlp(n_processes=1), 1),
        (lambda: edtlp(), 4),
        (lambda: linux(), 4),
        (lambda: static_hybrid(2), 4),
        (lambda: static_hybrid(4), 2),
        (lambda: mgps(), 4),
    ],
)
def test_makespan_invariant_under_compression(spec_factory, bootstraps):
    sizes = (150, 300, 600)
    times = makespans(spec_factory(), bootstraps, sizes)
    ref = times[-1]  # least-compressed = most accurate
    for t in times:
        assert t == pytest.approx(ref, rel=0.06)


def test_scale_property_equals_ratio():
    wl200 = Workload(bootstraps=1, tasks_per_bootstrap=200)
    wl400 = Workload(bootstraps=1, tasks_per_bootstrap=400)
    assert wl200.scale == pytest.approx(2 * wl400.scale, rel=1e-9)


def test_raw_makespan_shrinks_with_compression():
    wl200 = Workload(bootstraps=1, tasks_per_bootstrap=200)
    wl800 = Workload(bootstraps=1, tasks_per_bootstrap=800)
    r200 = run_experiment(edtlp(n_processes=1), wl200)
    r800 = run_experiment(edtlp(n_processes=1), wl800)
    assert r200.raw_makespan < r800.raw_makespan
    assert r200.makespan == pytest.approx(r800.makespan, rel=0.05)
