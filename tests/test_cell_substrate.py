"""Tests for the Cell machine substrate: params, local store, MFC, EIB,
SPE, pool and machine assembly."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cell import (
    BladeParams,
    CellMachine,
    CellParams,
    CodeImage,
    EIB,
    LocalStore,
    LocalStoreOverflow,
    MFC,
    SPE,
    legal_transfer_size,
)
from repro.sim import Environment

KB = 1024


class TestParams:
    def test_defaults_match_paper(self):
        p = CellParams()
        assert p.n_spes == 8
        assert p.ppe_smt_contexts == 2
        assert p.clock_hz == 3.2e9
        assert p.local_store_size == 256 * KB
        assert p.dma_max_request == 16 * KB
        assert p.dma_list_max == 2048
        assert p.context_switch == pytest.approx(1.5e-6)
        assert p.os_quantum == pytest.approx(10e-3)
        assert p.eib_bandwidth == pytest.approx(204.8 * 1024**3)

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            CellParams(n_spes=0)
        with pytest.raises(ValueError):
            CellParams(smt_efficiency=1.5)
        with pytest.raises(ValueError):
            CellParams(ppe_smt_contexts=0)
        with pytest.raises(ValueError):
            CellParams(dma_max_request=0)

    def test_with_replaces_fields(self):
        p = CellParams().with_(n_spes=4)
        assert p.n_spes == 4
        assert p.clock_hz == CellParams().clock_hz

    def test_blade_totals(self):
        b = BladeParams(n_cells=2)
        assert b.total_spes == 16
        assert b.total_ppe_contexts == 4

    def test_blade_needs_cells(self):
        with pytest.raises(ValueError):
            BladeParams(n_cells=0)


class TestLocalStore:
    def test_code_load_accounting(self):
        ls = LocalStore(256 * KB)
        img = CodeImage("raxml", "serial", 117 * KB)
        moved = ls.load_code(img)
        assert moved == 117 * KB
        assert ls.code_size == 117 * KB
        # Reloading the identical image moves nothing.
        assert ls.load_code(img) == 0

    def test_variant_replacement_moves_bytes(self):
        ls = LocalStore(256 * KB)
        serial = CodeImage("raxml", "serial", 117 * KB)
        llp = CodeImage("raxml", "llp", 123 * KB)
        ls.load_code(serial)
        assert ls.load_code(llp) == 123 * KB
        assert ls.code_image.variant == "llp"

    def test_paper_free_space(self):
        # 117 KB code leaves 139 KB for stack+heap (Section 5.1).
        ls = LocalStore(256 * KB, stack_reserve=0)
        ls.load_code(CodeImage("raxml", "serial", 117 * KB))
        assert ls.free == 139 * KB

    def test_code_overflow(self):
        ls = LocalStore(256 * KB)
        ls.allocate("heap", 200 * KB)
        with pytest.raises(LocalStoreOverflow):
            ls.load_code(CodeImage("big", "serial", 117 * KB))

    def test_allocation_lifecycle(self):
        ls = LocalStore(64 * KB, stack_reserve=4 * KB)
        ls.allocate("buf", 16 * KB)
        assert ls.data_in_use == 16 * KB
        with pytest.raises(ValueError):
            ls.allocate("buf", 1)  # duplicate label
        assert ls.release("buf") == 16 * KB
        with pytest.raises(KeyError):
            ls.release("buf")

    def test_allocation_overflow(self):
        ls = LocalStore(32 * KB, stack_reserve=0)
        with pytest.raises(LocalStoreOverflow):
            ls.allocate("big", 33 * KB)

    def test_reset_keeps_code(self):
        ls = LocalStore(256 * KB)
        ls.load_code(CodeImage("x", "serial", KB))
        ls.allocate("a", KB)
        ls.reset()
        assert ls.data_in_use == 0
        assert ls.code_image is not None

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            LocalStore(0)
        with pytest.raises(ValueError):
            LocalStore(10, stack_reserve=11)
        with pytest.raises(ValueError):
            CodeImage("x", "serial", 0)


class TestMFC:
    def setup_method(self):
        self.mfc = MFC(CellParams())

    def test_legal_transfer_sizes(self):
        assert legal_transfer_size(1) == 1
        assert legal_transfer_size(2) == 2
        assert legal_transfer_size(3) == 4
        assert legal_transfer_size(5) == 8
        assert legal_transfer_size(9) == 16
        assert legal_transfer_size(16) == 16
        assert legal_transfer_size(17) == 32
        with pytest.raises(ValueError):
            legal_transfer_size(0)

    def test_decompose_respects_16kb_limit(self):
        reqs = self.mfc.decompose(100 * KB)
        assert all(r.nbytes <= 16 * KB for r in reqs)
        assert sum(r.nbytes for r in reqs) >= 100 * KB

    def test_decompose_list_limit(self):
        # 2048 requests x 16 KB = 32 MB is the hard DMA-list ceiling.
        self.mfc.decompose(2048 * 16 * KB)
        with pytest.raises(ValueError):
            self.mfc.decompose(2048 * 16 * KB + 16)

    def test_transfer_time_monotone_in_size(self):
        t_small = self.mfc.transfer_time(1 * KB)
        t_big = self.mfc.transfer_time(64 * KB)
        assert t_big > t_small > 0

    def test_transfer_time_grows_with_contention(self):
        # Bandwidth shared among many streams; a single transfer is capped
        # at one ring, so 1..4 concurrent see no penalty on a 4-ring EIB.
        mfc = MFC(CellParams(), EIB(CellParams()))
        t1 = mfc.transfer_time(64 * KB, concurrent=1)
        t4 = mfc.transfer_time(64 * KB, concurrent=4)
        t16 = mfc.transfer_time(64 * KB, concurrent=16)
        assert t1 == pytest.approx(t4)
        assert t16 > t1

    @given(st.integers(min_value=1, max_value=10**7))
    @settings(max_examples=200, deadline=None)
    def test_legal_size_properties(self, n):
        legal = legal_transfer_size(n)
        assert legal >= n
        assert legal in (1, 2, 4, 8) or legal % 16 == 0
        # Minimality: the next smaller legal size is below n.
        if legal > 8 and legal - 16 >= 1:
            assert legal - 16 < n

    @given(st.integers(min_value=1, max_value=10 * 1024 * 1024))
    @settings(max_examples=100, deadline=None)
    def test_decompose_covers_exactly(self, n):
        reqs = self.mfc.decompose(n)
        total = sum(r.nbytes for r in reqs)
        assert total >= n
        assert total - n < 16  # only alignment padding
        assert all(
            r.nbytes in (1, 2, 4, 8) or r.nbytes % 16 == 0 for r in reqs
        )


class TestEIB:
    def test_share_caps_at_ring_bandwidth(self):
        eib = EIB(CellParams())
        assert eib.share(1) == pytest.approx(eib.ring_bandwidth)
        assert eib.share(100) == pytest.approx(eib.params.eib_bandwidth / 100)

    def test_registration_tracking(self):
        eib = EIB(CellParams())
        eib.register(3)
        assert eib.in_flight == 3
        eib.unregister(2)
        assert eib.in_flight == 1
        with pytest.raises(RuntimeError):
            eib.unregister(5)

    def test_contention_factor(self):
        eib = EIB(CellParams())
        assert eib.contention_factor(1) == pytest.approx(1.0)
        assert eib.contention_factor(4) == pytest.approx(1.0)  # 4 rings
        assert eib.contention_factor(8) == pytest.approx(2.0)


class TestSPEAndPool:
    def test_spe_busy_tracking(self):
        env = Environment()
        spe = SPE(env, CellParams(), 0, 3)
        assert spe.name == "cell0.spe3"

        def proc():
            yield from spe.occupy(2.0, "p0")

        env.run_until_complete(env.process(proc()))
        assert spe.busy_seconds == pytest.approx(2.0)
        assert spe.tasks_executed == 1
        assert spe.utilization(4.0) == pytest.approx(0.5)

    def test_double_busy_is_error(self):
        env = Environment()
        spe = SPE(env, CellParams(), 0, 0)
        spe.mark_busy("a")
        with pytest.raises(RuntimeError):
            spe.mark_busy("b")
        spe.mark_idle()
        with pytest.raises(RuntimeError):
            spe.mark_idle()

    def test_code_load_time_depends_on_residency(self):
        env = Environment()
        spe = SPE(env, CellParams(), 0, 0)
        img = CodeImage("m", "serial", 117 * KB)
        t1 = spe.load_code(img)
        assert t1 > 0
        assert spe.load_code(img) == 0.0
        assert spe.code_loads == 1

    def test_pool_blocking_acquire(self):
        env = Environment()
        machine = CellMachine(env, BladeParams(cell=CellParams(n_spes=2)))
        got = []

        def user(name, hold):
            spe = yield machine.pool.acquire()
            got.append((env.now, name))
            yield env.timeout(hold)
            machine.pool.release(spe)

        env.process(user("a", 1.0))
        env.process(user("b", 1.0))
        env.process(user("c", 1.0))
        env.run()
        assert [g[1] for g in got] == ["a", "b", "c"]
        assert got[2][0] == pytest.approx(1.0)  # c waited for a release

    def test_pool_try_acquire_many_prefers_cell(self):
        env = Environment()
        machine = CellMachine(env, BladeParams(n_cells=2))
        spes = machine.pool.try_acquire_many(8, prefer_cell=1)
        assert len(spes) == 8
        assert all(s.cell_id == 1 for s in spes)

    def test_pool_double_release_is_error(self):
        env = Environment()
        machine = CellMachine(env)
        spe = machine.pool.try_acquire()
        machine.pool.release(spe)
        with pytest.raises(RuntimeError):
            machine.pool.release(spe)

    def test_pool_exhaustion_returns_none(self):
        env = Environment()
        machine = CellMachine(env, BladeParams(cell=CellParams(n_spes=1)))
        assert machine.pool.try_acquire() is not None
        assert machine.pool.try_acquire() is None


class TestMachine:
    def test_assembly_counts(self):
        env = Environment()
        m = CellMachine(env, BladeParams(n_cells=2))
        assert m.n_spes == 16
        assert len(m.cores) == 2
        assert len(m.eibs) == 2
        assert m.pool.n_total == 16

    def test_cross_cell_signal_penalty(self):
        env = Environment()
        m = CellMachine(env, BladeParams(n_cells=2))
        own = m.signal_latency(0, m.spes[0])
        cross = m.signal_latency(0, m.spes[8])
        assert cross > own

    def test_spe_spe_latency(self):
        env = Environment()
        m = CellMachine(env, BladeParams(n_cells=2))
        same = m.spe_signal_latency(m.spes[0], m.spes[1])
        cross = m.spe_signal_latency(m.spes[0], m.spes[9])
        assert cross > same

    def test_idle_spes_reflect_busy_state(self):
        env = Environment()
        m = CellMachine(env)
        assert len(m.idle_spes()) == 8
        m.spes[0].mark_busy("x")
        assert len(m.idle_spes()) == 7

    def test_core_for_round_robin(self):
        env = Environment()
        m = CellMachine(env, BladeParams(n_cells=2))
        assert m.core_for(0) is m.cores[0]
        assert m.core_for(1) is m.cores[1]
        assert m.core_for(2) is m.cores[0]
