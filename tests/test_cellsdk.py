"""Tests for the libspe-style SDK façade."""

import pytest

from repro.cell.machine import CellMachine
from repro.cellsdk import SpeContext, SpeProgram, spe_context_create
from repro.sim import Environment


def setup():
    env = Environment()
    return env, CellMachine(env)


def echo_program(values_out):
    def body(spu):
        while True:
            msg = yield spu.read_mbox()
            if msg is None:
                return len(values_out)
            values_out.append(msg)
            yield from spu.write_mbox(msg * 2)

    return SpeProgram("echo", body)


class TestLifecycle:
    def test_create_claims_an_spe(self):
        env, machine = setup()

        def main():
            ctx = yield from spe_context_create(env, machine)
            assert machine.pool.n_free == 7
            ctx.destroy()
            assert machine.pool.n_free == 8

        env.run_until_complete(env.process(main()))

    def test_create_blocks_when_pool_empty(self):
        env, machine = setup()
        held = machine.pool.try_acquire_many(8)
        got = []

        def creator():
            ctx = yield from spe_context_create(env, machine)
            got.append(env.now)
            ctx.destroy()

        def releaser():
            yield env.timeout(1.0)
            machine.pool.release(held.pop())

        env.process(creator())
        env.process(releaser())
        env.run()
        assert got == [1.0]

    def test_load_program_pays_dma(self):
        env, machine = setup()

        def main():
            ctx = yield from spe_context_create(env, machine)
            t0 = env.now
            yield from ctx.load_program(SpeProgram("big", lambda s: iter(()),
                                                   image_kb=117))
            assert env.now > t0
            # Reloading the same image is free.
            t1 = env.now
            yield from ctx.load_program(SpeProgram("big", lambda s: iter(()),
                                                   image_kb=117))
            assert env.now == t1
            ctx.destroy()

        env.run_until_complete(env.process(main()))

    def test_run_requires_program(self):
        env, machine = setup()

        def main():
            ctx = yield from spe_context_create(env, machine)
            with pytest.raises(RuntimeError, match="no program"):
                ctx.run()
            ctx.destroy()

        env.run_until_complete(env.process(main()))

    def test_destroy_while_running_rejected(self):
        env, machine = setup()

        def forever(spu):
            yield spu.read_mbox()  # never satisfied

        def main():
            ctx = yield from spe_context_create(env, machine)
            yield from ctx.load_program(SpeProgram("loop", forever))
            ctx.run()
            yield env.timeout(1e-6)
            with pytest.raises(RuntimeError, match="running"):
                ctx.destroy()
            # Unblock and finish.
            yield from ctx.write_in_mbox("stop")

        env.run_until_complete(env.process(main()))

    def test_use_after_destroy_rejected(self):
        env, machine = setup()

        def main():
            ctx = yield from spe_context_create(env, machine)
            ctx.destroy()
            with pytest.raises(RuntimeError, match="destroyed"):
                ctx.read_out_mbox()
            yield env.timeout(0)

        env.run_until_complete(env.process(main()))


class TestMailboxesAndPrograms:
    def test_ping_pong_roundtrip(self):
        env, machine = setup()
        seen = []

        def main():
            ctx = yield from spe_context_create(env, machine)
            yield from ctx.load_program(echo_program(seen))
            run = ctx.run()
            for v in (1, 2, 3):
                yield from ctx.write_in_mbox(v)
                reply = yield ctx.read_out_mbox()
                assert reply == v * 2
            yield from ctx.write_in_mbox(None)
            count = yield run
            ctx.destroy()
            return count

        assert env.run_until_complete(env.process(main())) == 3
        assert seen == [1, 2, 3]

    def test_spe_busy_during_run(self):
        env, machine = setup()

        def body(spu):
            yield spu.compute(5e-6)
            return "ok"

        def main():
            ctx = yield from spe_context_create(env, machine)
            yield from ctx.load_program(SpeProgram("burn", body))
            run = ctx.run()
            yield env.timeout(1e-6)
            assert ctx.spe.busy
            result = yield run
            assert result == "ok"
            assert not ctx.spe.busy
            assert ctx.spe.tasks_executed == 1
            ctx.destroy()

        env.run_until_complete(env.process(main()))

    def test_double_run_rejected(self):
        env, machine = setup()

        def body(spu):
            yield spu.compute(1e-3)

        def main():
            ctx = yield from spe_context_create(env, machine)
            yield from ctx.load_program(SpeProgram("burn", body))
            run = ctx.run()
            with pytest.raises(RuntimeError, match="already running"):
                ctx.run()
            yield run
            ctx.destroy()

        env.run_until_complete(env.process(main()))

    def test_dma_takes_time_and_is_accounted(self):
        env, machine = setup()

        def body(spu):
            yield spu.dma_get(64 * 1024)
            yield spu.dma_put(64 * 1024)
            return spu.dma_bytes

        def main():
            ctx = yield from spe_context_create(env, machine)
            yield from ctx.load_program(SpeProgram("mover", body))
            t0 = env.now
            moved = yield ctx.run()
            assert moved == 128 * 1024
            assert env.now > t0
            ctx.destroy()

        env.run_until_complete(env.process(main()))

    def test_signal_latency_on_mailboxes(self):
        env, machine = setup()
        latency = machine.cell_params.ppe_spe_signal

        def body(spu):
            msg = yield spu.read_mbox()
            yield from spu.write_mbox(msg)

        def main():
            ctx = yield from spe_context_create(env, machine)
            yield from ctx.load_program(SpeProgram("echo1", body))
            run = ctx.run()
            t0 = env.now
            yield from ctx.write_in_mbox("x")
            yield ctx.read_out_mbox()
            # One latency each way.
            assert env.now - t0 == pytest.approx(2 * latency)
            yield run
            ctx.destroy()

        env.run_until_complete(env.process(main()))

    def test_program_validation(self):
        with pytest.raises(ValueError):
            SpeProgram("bad", lambda s: iter(()), image_kb=0)

    def test_compute_validation(self):
        env, machine = setup()

        def body(spu):
            with pytest.raises(ValueError):
                spu.compute(-1.0)
            yield spu.compute(0.0)

        def main():
            ctx = yield from spe_context_create(env, machine)
            yield from ctx.load_program(SpeProgram("v", body))
            yield ctx.run()
            ctx.destroy()

        env.run_until_complete(env.process(main()))
