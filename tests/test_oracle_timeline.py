"""Tests for the oracle selector and the timeline renderer."""

import pytest

from repro import Workload, edtlp, mgps, run_experiment, static_hybrid
from repro.analysis.timeline import (
    TaskSpan,
    extract_spans,
    render_timeline,
    utilization_bar,
)
from repro.core.oracle import OracleSelector, default_candidates
from repro.sim import Tracer


class TestOracle:
    def test_default_candidates_cover_machine(self):
        names = [c.name for c in default_candidates(8)]
        assert names == ["edtlp", "edtlp-llp2", "edtlp-llp4", "edtlp-llp8"]

    def test_picks_hybrid_at_low_tlp(self):
        oracle = OracleSelector(
            candidates=[edtlp(), static_hybrid(2), static_hybrid(4)]
        )
        choice = oracle.choose(Workload(bootstraps=1, tasks_per_bootstrap=150))
        assert choice.best_name.startswith("edtlp-llp")

    def test_picks_edtlp_at_high_tlp(self):
        oracle = OracleSelector(
            candidates=[edtlp(), static_hybrid(2), static_hybrid(4)]
        )
        choice = oracle.choose(Workload(bootstraps=16, tasks_per_bootstrap=100))
        assert choice.best_name == "edtlp"

    def test_mgps_close_to_oracle(self):
        """MGPS within 10% of oracle's pick, without the oracle."""
        oracle = OracleSelector(
            candidates=[edtlp(), static_hybrid(2), static_hybrid(4)]
        )
        for b in (1, 4, 16):
            wl = Workload(bootstraps=b, tasks_per_bootstrap=150)
            choice = oracle.choose(wl)
            mg = run_experiment(mgps(), wl)
            assert mg.makespan <= 1.10 * choice.best.makespan

    def test_margin_over(self):
        oracle = OracleSelector(candidates=[edtlp(), static_hybrid(2)])
        choice = oracle.choose(Workload(bootstraps=1, tasks_per_bootstrap=100))
        assert choice.margin_over("edtlp") >= 1.0
        with pytest.raises(KeyError):
            choice.margin_over("nonexistent")

    def test_sweep_keys(self):
        oracle = OracleSelector(candidates=[edtlp(), static_hybrid(2)])
        out = oracle.sweep([1, 2], tasks_per_bootstrap=80)
        assert set(out) == {1, 2}

    def test_empty_candidates_rejected(self):
        with pytest.raises(ValueError):
            OracleSelector(candidates=[])


class TestTimeline:
    def _traced_run(self, spec, bootstraps=2):
        tracer = Tracer(enabled=True)
        wl = Workload(bootstraps=bootstraps, tasks_per_bootstrap=80)
        result = run_experiment(spec, wl, tracer=tracer)
        return tracer, result

    def test_spans_pair_start_end(self):
        tracer, result = self._traced_run(edtlp())
        spans = extract_spans(tracer)
        assert len(spans) == result.offloads
        for s in spans:
            assert s.end > s.start
            assert 0 <= s.proc < result.n_processes

    def test_worker_spans_recorded_for_llp(self):
        tracer, result = self._traced_run(static_hybrid(4), bootstraps=1)
        spans = extract_spans(tracer)
        # master + 3 workers per off-load.
        assert len(spans) == 4 * result.offloads

    def test_spans_never_overlap_per_spe(self):
        tracer, _ = self._traced_run(mgps(), bootstraps=3)
        by_spe = {}
        for s in extract_spans(tracer):
            by_spe.setdefault(s.spe, []).append(s)
        for spans in by_spe.values():
            spans.sort(key=lambda s: s.start)
            for a, b in zip(spans, spans[1:]):
                assert a.end <= b.start + 1e-12

    def test_render_timeline_shape(self):
        tracer, _ = self._traced_run(edtlp())
        text = render_timeline(tracer, width=40)
        lines = text.splitlines()
        assert "SPE timeline" in lines[0]
        for line in lines[1:]:
            assert line.endswith("|")
            assert len(line.split("|")[1]) == 40

    def test_render_empty_trace(self):
        assert "no SPE activity" in render_timeline(Tracer(enabled=True))

    def test_render_validates_window(self):
        tracer, _ = self._traced_run(edtlp())
        with pytest.raises(ValueError):
            render_timeline(tracer, width=5)
        with pytest.raises(ValueError):
            render_timeline(tracer, t_start=1.0, t_end=0.5)

    def test_utilization_bar_fractions(self):
        tracer, result = self._traced_run(edtlp())
        text = utilization_bar(tracer, result.raw_makespan)
        assert "%" in text
        # every percentage is within [0, 100].
        for line in text.splitlines():
            pct = float(line.rsplit(" ", 1)[-1].rstrip("%"))
            assert 0.0 <= pct <= 100.0

    def test_tracer_disabled_by_default(self):
        wl = Workload(bootstraps=1, tasks_per_bootstrap=80)
        result = run_experiment(edtlp(), wl)  # no tracer
        assert result.makespan > 0  # and no crash / no recording overhead

    def test_unbalanced_trace_rejected(self):
        t = Tracer(enabled=True)
        t.emit(0.0, "spe", "x", "task_end")
        with pytest.raises(ValueError):
            extract_spans(t)
        t2 = Tracer(enabled=True)
        t2.emit(0.0, "spe", "x", "task_start", proc=0, function="f")
        t2.emit(0.1, "spe", "x", "task_start", proc=0, function="f")
        with pytest.raises(ValueError):
            extract_spans(t2)
