"""Tests for the online serving layer (src/repro/serve).

Acceptance surface of the serving PR: the run is bit-deterministic
(event logs and JSON records byte-identical across same-seed runs),
admission control sheds with explicit accounting, deadlines are
tracked, the autoscaler moves in both directions, a blade death mid-
stream loses nothing and changes no digests, and the per-job digest map
is invariant across dispatch policies.
"""

import json

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.serve import (
    BladeKill,
    FleetFaultPlan,
    JobTemplate,
    ServeConfig,
    TenantSpec,
    TokenBucket,
    available_dispatch_policies,
    block_partition,
    default_tenants,
    exact_percentile,
    register_dispatch,
    resolve_dispatch,
    run_service,
)
from repro.sim.trace import Tracer

SMALL = JobTemplate("small", bootstraps=2, tasks_per_bootstrap=60, variants=2)


def open_loop_tenants(rate=0.1):
    """Open-loop only: submission sets are identical across runs with
    different timing, so full digest-map equality is a valid assert."""
    return (
        TenantSpec("alpha", SMALL, arrival="poisson", arrival_rate=rate,
                   priority=1, deadline_s=900.0),
        TenantSpec("beta", SMALL, arrival="bursty", burst_size=3,
                   burst_interval_s=300.0),
    )


# -- dispatch registry --------------------------------------------------------

class TestDispatchRegistry:
    def test_block_partition_matches_historical_layout(self):
        assert [len(b) for b in block_partition(100, 4)] == [25, 25, 25, 25]
        assert [len(b) for b in block_partition(10, 3)] == [4, 3, 3]
        blocks = block_partition(10, 3)
        # Contiguous, disjoint, complete.
        assert [i for b in blocks for i in b] == list(range(10))

    def test_registry_contents(self):
        names = [i.name for i in available_dispatch_policies()]
        assert names == sorted(names)
        assert {"static-block", "least-loaded", "join-shortest-queue",
                "work-stealing"} <= set(names)

    def test_unknown_name_lists_known(self):
        with pytest.raises(ValueError) as exc:
            resolve_dispatch("no-such-policy")
        assert "static-block" in str(exc.value)

    def test_duplicate_registration_rejected(self):
        info = resolve_dispatch("static-block")
        with pytest.raises(ValueError):
            register_dispatch("static-block", info.factory)


# -- admission primitives -----------------------------------------------------

class TestTokenBucket:
    def test_burst_then_refill(self):
        b = TokenBucket(rate=1.0, burst=2)
        assert b.try_take(0.0) and b.try_take(0.0)
        assert not b.try_take(0.0)          # burst exhausted
        assert b.try_take(1.0)              # one token refilled
        assert not b.try_take(1.0)

    def test_infinite_rate_never_sheds(self):
        b = TokenBucket(rate=float("inf"), burst=1)
        assert all(b.try_take(0.0) for _ in range(100))


class TestExactPercentile:
    def test_nearest_rank(self):
        vals = list(range(1, 11))
        assert exact_percentile(vals, 50) == 5
        assert exact_percentile(vals, 95) == 10
        assert exact_percentile(vals, 0) == 1
        assert exact_percentile(vals, 100) == 10
        assert exact_percentile([], 99) == 0.0

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            exact_percentile([1.0], 101)


# -- configuration validation -------------------------------------------------

class TestServeConfig:
    def test_rejects_duplicate_tenants(self):
        t = TenantSpec("a", SMALL)
        with pytest.raises(ValueError):
            ServeConfig(tenants=(t, t))

    def test_rejects_bad_blade_bounds(self):
        with pytest.raises(ValueError):
            ServeConfig(tenants=(TenantSpec("a", SMALL),), min_blades=3,
                        max_blades=2)

    def test_rejects_kill_outside_fleet(self):
        with pytest.raises(ValueError):
            ServeConfig(
                tenants=(TenantSpec("a", SMALL),),
                max_blades=2,
                faults=FleetFaultPlan(kills=(BladeKill(blade=5, at=1.0),)),
            )

    def test_fault_plan_json_roundtrip(self):
        plan = FleetFaultPlan(kills=(BladeKill(blade=1, at=600.0),))
        assert FleetFaultPlan.from_json(plan.to_json()) == plan
        with pytest.raises(ValueError):
            FleetFaultPlan.from_json('{"bogus": 1}')


# -- determinism --------------------------------------------------------------

class TestDeterminism:
    def _run(self):
        tracer, metrics = Tracer(enabled=True), MetricsRegistry()
        cfg = ServeConfig(
            tenants=default_tenants(arrival_rate=0.05),
            duration_s=1200.0, seed=11, autoscale=True,
        )
        return run_service(cfg, tracer=tracer, metrics=metrics), tracer

    def test_same_seed_is_byte_identical(self):
        r1, t1 = self._run()
        r2, t2 = self._run()
        assert r1.to_json() == r2.to_json()
        # Not just the summary: the full event log replays identically.
        assert t1.to_jsonl() == t2.to_jsonl()
        assert r1.summary == r2.summary

    def test_json_is_loadable_and_complete(self):
        r, _ = self._run()
        payload = json.loads(r.to_json())
        assert payload["summary"]["completed"] == len(payload["jobs"])
        for job in payload["jobs"]:
            assert job["digest"]
            assert job["source"]
        assert len({j["source"] for j in payload["jobs"]}) == len(
            payload["jobs"]
        )


# -- admission control --------------------------------------------------------

class TestAdmission:
    def test_bounded_queue_sheds_with_accounting(self):
        # One slow blade, a tight queue, and an open-loop firehose.
        cfg = ServeConfig(
            tenants=(TenantSpec("hose", SMALL, arrival="poisson",
                                arrival_rate=0.5),),
            duration_s=600.0, seed=3,
            min_blades=1, max_blades=1, queue_capacity=4,
        )
        r = run_service(cfg)
        s = r.summary
        assert s["rejected"] > 0
        assert s["arrivals"] == s["admitted"] + s["rejected"]
        assert s["admitted"] == s["completed"]  # admitted jobs all finish
        assert 0 < s["rejection_rate"] < 1
        assert s["tenants"]["hose"]["rejected"] == s["rejected"]

    def test_token_bucket_sheds_rate_limit(self):
        # Bursts of 6 against a depth-2 bucket refilled at 0.001/s.
        cfg = ServeConfig(
            tenants=(TenantSpec("bursty", SMALL, arrival="bursty",
                                burst_size=6, burst_interval_s=200.0,
                                rate_limit=0.001, burst=2),),
            duration_s=1200.0, seed=5,
        )
        tracer = Tracer(enabled=True)
        r = run_service(cfg, tracer=tracer)
        assert r.summary["rejected"] > 0
        reasons = {rec.get("reason") for rec in tracer.filter(
            category="serve", event="reject")}
        assert reasons == {"rate-limit"}

    def test_batching_fuses_same_bag_jobs(self):
        one_variant = JobTemplate("mono", bootstraps=2,
                                  tasks_per_bootstrap=60, variants=1)
        cfg = ServeConfig(
            tenants=(TenantSpec("b", one_variant, arrival="bursty",
                                burst_size=6, burst_interval_s=400.0),),
            duration_s=1200.0, seed=2, min_blades=1, max_blades=1,
            batch_max=4,
        )
        r = run_service(cfg)
        assert r.summary["batches"] > 0
        assert r.summary["batched_jobs"] > r.summary["batches"]
        assert r.summary["completed"] == r.summary["admitted"]


# -- SLOs ---------------------------------------------------------------------

class TestDeadlines:
    def test_impossible_deadline_counts_misses_not_goodput(self):
        cfg = ServeConfig(
            tenants=(TenantSpec("tight", SMALL, arrival="poisson",
                                arrival_rate=0.05, deadline_s=1.0),),
            duration_s=600.0, seed=4,
        )
        r = run_service(cfg)
        s = r.summary
        assert s["completed"] > 0
        # Service times are tens of seconds; a 1s deadline always misses.
        assert s["deadline_misses"] == s["completed"]
        assert s["deadline_miss_rate"] == 1.0
        assert s["goodput_jps"] == 0.0  # misses don't count as goodput
        assert all(j["missed_deadline"] for j in r.job_records)


# -- elasticity ---------------------------------------------------------------

class TestAutoscaler:
    def test_scales_up_and_down_within_bounds(self):
        cfg = ServeConfig(
            tenants=default_tenants(arrival_rate=0.05),
            duration_s=1800.0, seed=0, autoscale=True,
            min_blades=2, max_blades=4,
        )
        r = run_service(cfg)
        directions = [d for _, d, _ in r.autoscaler_events]
        assert "up" in directions
        assert "down" in directions
        for _, _, n_active in r.autoscaler_events:
            assert cfg.min_blades <= n_active <= cfg.max_blades

    def test_fixed_fleet_never_scales(self):
        cfg = ServeConfig(
            tenants=default_tenants(arrival_rate=0.05),
            duration_s=1800.0, seed=0, autoscale=False,
        )
        r = run_service(cfg)
        assert r.autoscaler_events == ()


# -- fault tolerance ----------------------------------------------------------

class TestBladeDeath:
    def _cfgs(self):
        base = dict(
            tenants=open_loop_tenants(rate=0.1),
            duration_s=900.0, seed=9,
            min_blades=3, max_blades=3, dispatch="least-loaded",
        )
        clean = ServeConfig(**base)
        faulty = ServeConfig(
            **base,
            faults=FleetFaultPlan(kills=(BladeKill(blade=1, at=300.0),)),
        )
        return clean, faulty

    def test_failover_loses_nothing_and_changes_no_digest(self):
        clean_cfg, faulty_cfg = self._cfgs()
        clean = run_service(clean_cfg)
        faulty = run_service(faulty_cfg)
        assert faulty.lost_jobs == 0
        assert faulty.summary["failovers"] > 0
        assert faulty.summary["completed"] == clean.summary["completed"]
        # The killed blade is reported dead and ran less work.
        dead = faulty.per_blade[1]
        assert not dead["alive"]
        # The headline invariant: identical digest maps, key for key.
        assert faulty.digest_map() == clean.digest_map()

    def test_total_fleet_loss_shed_explicitly(self):
        cfg = ServeConfig(
            tenants=open_loop_tenants(rate=0.1),
            duration_s=900.0, seed=9, min_blades=1, max_blades=1,
            faults=FleetFaultPlan(kills=(BladeKill(blade=0, at=200.0),)),
        )
        r = run_service(cfg)
        # The run terminates (no deadlock) and accounts for every job.
        s = r.summary
        assert r.lost_jobs > 0
        assert s["completed"] + r.lost_jobs == s["admitted"]

    def test_scale_down_drain_racing_kill_on_same_blade(self):
        # A surge scales the fleet up, then the lull scales it down at
        # t=840; killing the draining blade right at (and just after)
        # the sample must not lose or duplicate any queued job.
        tenants = (
            TenantSpec("surge", SMALL, arrival="bursty", burst_size=12,
                       burst_interval_s=1200.0),
            TenantSpec("trickle", SMALL, arrival="poisson",
                       arrival_rate=0.02, priority=1, deadline_s=900.0),
        )
        base = dict(
            tenants=tenants, duration_s=1800.0, seed=0, autoscale=True,
            min_blades=2, max_blades=4, dispatch="least-loaded",
        )
        clean = run_service(ServeConfig(**base))
        assert ("down" in [d for _, d, _ in clean.autoscaler_events])
        for kill_at in (840.0, 840.5):       # at the sample / mid-drain
            faulty = run_service(ServeConfig(
                **base,
                faults=FleetFaultPlan(
                    kills=(BladeKill(blade=2, at=kill_at),)),
            ))
            assert faulty.lost_jobs == 0, kill_at
            assert (faulty.summary["completed"]
                    == clean.summary["completed"]), kill_at
            assert faulty.digest_map() == clean.digest_map(), kill_at


# -- workflow cancellation ----------------------------------------------------

class TestCancellation:
    """The cancel/drain path the workflow bootstop exercises."""

    def _run_with_cancel(self, cancel_at=60.0):
        from repro.serve import Service
        from repro.sim.engine import Environment

        tenant = TenantSpec("wf", SMALL, arrival="poisson",
                            arrival_rate=0.01)
        cfg = ServeConfig(tenants=(tenant,), duration_s=1.0, seed=0,
                          min_blades=1, max_blades=1, queue_capacity=64)
        tracer = Tracer(enabled=True)
        metrics = MetricsRegistry()
        env = Environment(tracer=tracer, metrics=metrics)
        service = Service(env, cfg, tracer=tracer, metrics=metrics)
        service.start(arrivals=False)
        jobs = []

        verdicts = {}

        def driver():
            for v in range(8):
                job = service.frontend.submit(tenant, v, source=f"req{v}")
                assert job is not None
                jobs.append(job)
            yield env.timeout(cancel_at)
            # By now the single blade is mid-unit: cancel whatever has
            # not started (running jobs finish, as in autoMRE).
            for job in jobs:
                verdicts[job.job_id] = service.cancel_job(job)
            service.purge_cancelled_units()
            service.arrivals_done = True
            service._check_stop()

        env.process(driver(), name="driver")
        env.run_until_complete(service._main)
        return service, service.result(), jobs, tracer, metrics, verdicts

    def test_conservation_covers_cancelled_class(self):
        _svc, result, jobs, _tracer, _metrics, _v = self._run_with_cancel()
        s = result.summary
        assert s["admitted"] == 8
        assert s["completed"] > 0       # the running unit finished
        assert s["cancelled"] > 0       # the queued suffix did not
        # The extended identity: every admitted job lands in exactly
        # one terminal class.
        assert s["admitted"] == (s["completed"] + s["cancelled"]
                                 + s["deadline_aborts"] + result.lost_jobs)
        assert result.lost_jobs == 0
        for job in jobs:
            if job.cancelled:
                assert job.start_time is None   # never ran
                assert job.finish_time is None  # never completed
            else:
                assert job.finish_time is not None

    def test_cancel_refuses_running_and_finished_jobs(self):
        service, _result, jobs, _t, _m, verdicts = self._run_with_cancel()
        # At cancel time: queued jobs accepted, started jobs refused.
        for job in jobs:
            assert verdicts[job.job_id] == job.cancelled
        assert all(j.cancelled or j.finish_time is not None for j in jobs)
        # Post-run every job is terminal, so nothing is cancellable —
        # including a second cancel of an already-cancelled job.
        assert not any(service.cancel_job(j) for j in jobs)

    def test_workflow_cancel_traced_and_rendered_in_ops_log(self):
        from repro.obs.report import render_report

        _svc, result, _jobs, tracer, metrics, _v = self._run_with_cancel()
        s = result.summary
        cancels = [r for r in tracer.records
                   if r.category == "serve" and r.event == "workflow-cancel"]
        assert len(cancels) == s["cancelled"]
        # Each cancel names the job it released.
        assert all(dict(r.data).get("job") for r in cancels)
        html = render_report(tracer, metrics, title="cancel")
        assert "workflow-cancel" in html
        assert "bootstop" in html  # the ops-log explanation text

    def test_counter_matches_summary(self):
        _svc, result, _jobs, _tracer, metrics, _v = self._run_with_cancel()
        counter = metrics.get("serve.cancelled")
        assert counter is not None
        assert counter.value == result.summary["cancelled"]


# -- dispatch invariance ------------------------------------------------------

class TestDigestInvariance:
    def test_digest_map_identical_across_policies(self):
        maps = {}
        for info in available_dispatch_policies():
            cfg = ServeConfig(
                tenants=open_loop_tenants(rate=0.1),
                duration_s=900.0, seed=13, dispatch=info.name,
            )
            maps[info.name] = run_service(cfg).digest_map()
        reference = maps["static-block"]
        assert reference  # ran something
        for name, digest_map in maps.items():
            assert digest_map == reference, (
                f"{name} changed at least one job's result digest"
            )

    def test_work_stealing_actually_steals(self):
        tracer = Tracer(enabled=True)
        cfg = ServeConfig(
            tenants=(TenantSpec("hose", SMALL, arrival="bursty",
                                burst_size=8, burst_interval_s=300.0),),
            duration_s=1200.0, seed=1, dispatch="work-stealing",
            min_blades=3, max_blades=3,
        )
        run_service(cfg, tracer=tracer)
        assert tracer.filter(category="serve", event="steal")
