"""Tests for causal span trees, attribution and windowed time series.

Acceptance surface of the latency-attribution PR: per-job serve trees
tile the sojourn exactly (reconciliation is asserted, and its failure
mode names the leaking span), off-load trees keep retry attempts as
siblings with the backoff wait on the critical path, a blade death
mid-job shows up as aborted/requeue phases without breaking
reconciliation, a run with zero completed jobs renders an explicit
empty state everywhere, and the windowed sampler is deterministic.
"""

import json

import pytest

from repro.cell.params import BladeParams
from repro.core.runner import run_experiment
from repro.core.schedulers import mgps
from repro.faults import FaultPlan
from repro.obs.attribution import (
    aggregate_breakdown,
    job_summary,
    publish_breakdown,
    render_explain,
    top_slowest,
)
from repro.obs.causal import (
    JobTree,
    PHASE_ORDER,
    ReconciliationError,
    SpanNode,
    build_job_trees,
    build_offload_trees,
    critical_path,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.report import render_report
from repro.obs.timeseries import sample_timeseries
from repro.serve import (
    BladeKill,
    FleetFaultPlan,
    JobTemplate,
    ServeConfig,
    TenantSpec,
    default_tenants,
    run_service,
)
from repro.sim.trace import Tracer
from repro.workloads.traces import Workload

SMALL = JobTemplate("small", bootstraps=2, tasks_per_bootstrap=60, variants=2)


def serve_trace(config=None):
    tracer = Tracer(enabled=True)
    result = run_service(
        config or ServeConfig(tenants=default_tenants(), seed=0),
        tracer=tracer,
    )
    return tracer, result


def fault_trace(fail_rate=0.4, seed=3, tasks=80):
    tracer = Tracer(enabled=True)
    result = run_experiment(
        mgps(), Workload(bootstraps=2, tasks_per_bootstrap=tasks, seed=0),
        blade=BladeParams(), seed=0, tracer=tracer,
        faults=FaultPlan(offload_fail_rate=fail_rate, seed=seed),
    )
    return tracer, result


# -- serve job trees ----------------------------------------------------------

class TestServeJobTrees:
    def test_every_completed_job_reconciles(self):
        tracer, result = serve_trace()
        trees = build_job_trees(tracer)
        completed = [t for t in trees.values() if t.status == "completed"]
        assert len(completed) == result.summary["completed"] > 0
        for tree in completed:
            tree.validate()           # raises on any leak
            total = sum(p.duration for p in tree.phases)
            assert total == pytest.approx(tree.sojourn, abs=1e-9)

    def test_phase_names_and_order(self):
        tracer, _ = serve_trace()
        for tree in build_job_trees(tracer).values():
            names = [p.name for p in tree.phases]
            assert set(names) <= set(PHASE_ORDER)
            if tree.status == "completed":
                assert names[0] == "admission"
                assert names[-1] in ("service", "service-aborted")

    def test_job_summary_shares_sum_to_one(self):
        tracer, _ = serve_trace()
        trees = build_job_trees(tracer)
        for row in top_slowest(trees, k=5):
            assert sum(row["phase_shares"].values()) == pytest.approx(
                1.0, abs=1e-6)
            assert row["dominant_phase"] in row["phases_s"]

    def test_breakdown_published_as_gauges(self):
        tracer, _ = serve_trace()
        trees = build_job_trees(tracer)
        breakdown = aggregate_breakdown(trees)
        metrics = MetricsRegistry()
        publish_breakdown(metrics, breakdown)
        snap = metrics.snapshot()
        assert snap["serve.breakdown.completed"]["value"] == \
            breakdown["completed"]
        assert any(name.startswith("serve.breakdown.") and "tenant=" in name
                   for name in snap)

    def test_attaching_tracer_changes_no_outcome(self):
        cfg = ServeConfig(tenants=default_tenants(), seed=0)
        _, traced = serve_trace(cfg)
        bare = run_service(cfg)
        assert traced.digest_map() == bare.digest_map()
        assert traced.summary == bare.summary


# -- off-load trees under faults ----------------------------------------------

class TestOffloadTrees:
    def test_tree_per_offload(self):
        tracer, result = fault_trace(fail_rate=0.0, seed=0)
        roots = build_offload_trees(tracer)
        assert len(roots) == result.offloads > 0

    def test_retry_attempts_are_siblings(self):
        tracer, _ = fault_trace()
        roots = build_offload_trees(tracer)
        retried = [r for r in roots
                   if sum(1 for n in r.walk()
                          if n.name.startswith("attempt[")) > 1]
        assert retried, "fault plan produced no retried off-loads"
        for root in retried:
            offload = root.children[0]
            names = [c.name for c in offload.children]
            attempts = [n for n in names if n.startswith("attempt[")]
            # attempt[i] siblings under one offload span, backoffs between
            assert attempts == [f"attempt[{i}]"
                                for i in range(len(attempts))]
            assert "backoff" in names

    def test_backoff_on_critical_path(self):
        tracer, _ = fault_trace()
        roots = build_offload_trees(tracer)
        for root in roots:
            path = [n.name for n in critical_path(root)]
            if "backoff" in path:
                # the failed attempt that caused the wait is on the path
                assert path.index("attempt[0]") < path.index("backoff")
                break
        else:
            pytest.fail("no critical path included a backoff wait")

    def test_ppe_fallback_ends_the_tree(self):
        tracer, _ = fault_trace()
        roots = build_offload_trees(tracer)
        fallbacks = [r for r in roots
                     if any(n.name == "ppe-fallback" for n in r.walk())]
        assert fallbacks, "fault plan produced no PPE fallbacks"
        for root in fallbacks:
            path = [n.name for n in critical_path(root)]
            assert path[-1] == "ppe-fallback"
            assert root.end == pytest.approx(
                max(n.end for n in root.walk()))

    def test_llp_fanout_join_determinant(self):
        tracer, _ = fault_trace(fail_rate=0.0, seed=0)
        roots = build_offload_trees(tracer)
        fanned = [r for r in roots
                  if any(n.name == "chunks" for n in r.walk())]
        assert fanned, "no off-load carried an LLP fan-out"
        root = fanned[0]
        chunks = next(n for n in root.walk() if n.name == "chunks")
        assert chunks.parallel
        path = critical_path(root)
        on_path = next(n for n in path if n.name.startswith("chunk["))
        assert on_path.end == max(c.end for c in chunks.children)


# -- blade death mid-job ------------------------------------------------------

class TestBladeDeath:
    def _cfg(self, **kw):
        base = dict(
            tenants=(TenantSpec("alpha", SMALL, arrival="poisson",
                                arrival_rate=0.1, priority=1,
                                deadline_s=900.0),),
            duration_s=900.0, seed=9, min_blades=3, max_blades=3,
            dispatch="least-loaded",
        )
        base.update(kw)
        return ServeConfig(**base)

    def test_failover_phases_reconcile(self):
        cfg = self._cfg(
            faults=FleetFaultPlan(kills=(BladeKill(blade=1, at=300.0),)))
        tracer, result = serve_trace(cfg)
        assert result.summary["failovers"] > 0
        trees = build_job_trees(tracer)
        aborted = [t for t in trees.values()
                   if any(p.name.endswith("-aborted") or
                          p.name == "requeue" for p in t.phases)]
        assert aborted, "blade kill produced no aborted phases"
        for tree in trees.values():
            tree.validate()
        # failed-over jobs still complete and their requeue hop is real
        assert any(t.status == "completed" for t in aborted)

    def test_total_loss_is_explicit_everywhere(self):
        cfg = self._cfg(
            min_blades=1, max_blades=1,
            faults=FleetFaultPlan(kills=(BladeKill(blade=0, at=1.0),)))
        tracer, result = serve_trace(cfg)
        assert result.summary["completed"] == 0
        trees = build_job_trees(tracer)
        breakdown = aggregate_breakdown(trees)
        assert breakdown["completed"] == 0
        assert "note" in breakdown
        text = render_explain(trees, breakdown)
        assert "nothing to attribute" in text
        html = render_report(tracer, MetricsRegistry(), title="loss")
        assert "nothing to attribute" in html


# -- reconciliation failure mode ----------------------------------------------

class TestReconciliation:
    def _tree(self, phases):
        root = SpanNode("job", phases[0].start, phases[-1].end,
                        children=list(phases))
        return JobTree(job_id=7, tenant="t", template="x", variant=0,
                       status="completed", root=root)

    def test_gap_names_the_leaking_span(self):
        tree = self._tree([SpanNode("admission", 0.0, 2.0),
                           SpanNode("service", 3.0, 10.0)])
        with pytest.raises(ReconciliationError) as err:
            tree.validate()
        msg = str(err.value)
        assert "'admission'" in msg and "'service'" in msg
        assert "job 7" in msg

    def test_trailing_leak_named(self):
        root = SpanNode("job", 0.0, 10.0,
                        children=[SpanNode("admission", 0.0, 2.0),
                                  SpanNode("service", 2.0, 8.0)])
        tree = JobTree(job_id=8, tenant="t", template="x", variant=0,
                       status="completed", root=root)
        with pytest.raises(ReconciliationError) as err:
            tree.validate()
        assert "after final phase 'service'" in str(err.value)

    def test_job_summary_validates_first(self):
        tree = self._tree([SpanNode("admission", 0.0, 2.0),
                           SpanNode("service", 3.0, 10.0)])
        with pytest.raises(ReconciliationError):
            job_summary(tree)


# -- windowed time series -----------------------------------------------------

class TestTimeseries:
    def test_deterministic_and_shaped(self):
        a = sample_timeseries(serve_trace()[0])
        b = sample_timeseries(serve_trace()[0])
        assert a.to_dict() == b.to_dict()
        assert a.n_buckets == 60
        assert "queue_depth" in a.series and "in_flight" in a.series
        assert all(len(v) == a.n_buckets for v in a.series.values())

    def test_utilization_bounded(self):
        ts = sample_timeseries(serve_trace()[0])
        u_series = [v for k, v in ts.series.items() if k.endswith(".u")]
        assert u_series
        for series in u_series:
            assert all(0.0 <= x <= 1.0 + 1e-9 for x in series)

    def test_empty_trace(self):
        ts = sample_timeseries(Tracer(enabled=True))
        assert ts.n_buckets == 0
        assert ts.series == {}

    def test_json_round_trip(self):
        ts = sample_timeseries(serve_trace()[0])
        assert json.loads(json.dumps(ts.to_dict())) == ts.to_dict()


# -- CLI ----------------------------------------------------------------------

class TestExplainCli:
    def test_serve_json(self, capsys):
        from repro.cli import main
        assert main(["explain", "--top", "3", "--json"]) == 0
        out = json.loads(capsys.readouterr().out)
        assert out["scenario"] == "serve"
        assert len(out["jobs"]) == 3
        for row in out["jobs"]:
            assert sum(row["phase_shares"].values()) == pytest.approx(
                1.0, abs=1e-6)

    def test_serve_text(self, capsys):
        from repro.cli import main
        assert main(["explain", "--top", "2"]) == 0
        out = capsys.readouterr().out
        assert "critical path" in out or "admission" in out

    def test_missing_job_exits_nonzero(self, capsys):
        from repro.cli import main
        assert main(["explain", "--job", "999999"]) == 1
        assert "not found" in capsys.readouterr().out

    def test_core_scenario(self, capsys):
        from repro.cli import main
        assert main(["explain", "fig8", "--tasks", "60", "--top", "2",
                     "--json"]) == 0
        out = json.loads(capsys.readouterr().out)
        assert out["scenario"] == "fig8"
        assert out["offloads"] > 0
        assert len(out["slowest"]) == 2


# -- report lane --------------------------------------------------------------

class TestReportLane:
    def test_serve_report_has_attribution(self):
        tracer, _ = serve_trace()
        metrics = MetricsRegistry()
        trees = build_job_trees(tracer)
        publish_breakdown(metrics, aggregate_breakdown(trees))
        html = render_report(tracer, metrics, title="t")
        assert 'id="latency"' in html
        assert "Sojourn phase breakdown" in html
        assert "phase-bar" in html and "spark" in html
        assert "<script" not in html

    def test_core_report_unchanged_by_lane(self):
        tracer, _ = fault_trace(fail_rate=0.0, seed=0)
        html = render_report(tracer, MetricsRegistry(), title="t")
        assert 'id="latency"' in html
        assert "Sojourn phase breakdown" not in html
