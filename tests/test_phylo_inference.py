"""Tests for the search, bootstrap analysis and the simulator bridge."""

import numpy as np
import pytest

from repro.phylo import (
    KernelCostModel,
    LikelihoodEngine,
    Tree,
    branch_support,
    hill_climb,
    hky,
    jc69,
    profile_report,
    run_bootstrap_analysis,
    synthesize_alignment,
    trace_from_kernel_log,
)
from repro.phylo.bootstrap import _bipartitions


class TestHillClimb:
    def test_never_worse_than_start(self):
        aln = synthesize_alignment(7, 150, seed=0)
        eng = LikelihoodEngine(aln, hky(), 2)
        start = Tree.random_topology(7, np.random.default_rng(0))
        start_lik = eng.evaluate(start)
        result = hill_climb(eng, start, max_rounds=3)
        assert result.loglik >= start_lik

    def test_deterministic(self):
        aln = synthesize_alignment(6, 100, seed=1)
        start = Tree.random_topology(6, np.random.default_rng(1))
        r1 = hill_climb(LikelihoodEngine(aln, jc69(), 1), start, max_rounds=2)
        r2 = hill_climb(LikelihoodEngine(aln, jc69(), 1), start, max_rounds=2)
        assert r1.loglik == r2.loglik
        assert r1.tree.newick() == r2.tree.newick()

    def test_does_not_mutate_start_tree(self):
        aln = synthesize_alignment(6, 80, seed=2)
        eng = LikelihoodEngine(aln, jc69(), 1)
        start = Tree.random_topology(6, np.random.default_rng(2))
        before = start.newick()
        hill_climb(eng, start, max_rounds=2)
        assert start.newick() == before

    def test_counters_populated(self):
        aln = synthesize_alignment(6, 80, seed=3)
        eng = LikelihoodEngine(aln, jc69(), 1)
        start = Tree.random_topology(6, np.random.default_rng(3))
        result = hill_climb(eng, start, max_rounds=2)
        assert result.moves_evaluated > 0
        assert result.rounds >= 1

    def test_recovers_signal_topology_with_multiple_starts(self):
        """On strongly structured data, the best of several independent
        inferences groups the two clades.

        Single-start NNI hill climbing has genuine local optima — which
        is precisely why RAxML (Section 3.1) performs multiple inferences
        from distinct random starting trees and keeps the best-scoring
        one.
        """
        # Two divergent clades: {0,1,2} vs {3,4,5}.
        seqs = [
            "AAAA" * 25, "AAAT" * 25, "AATA" * 25,
            "GGGG" * 25, "GGGC" * 25, "GGCG" * 25,
        ]
        from repro.phylo import Alignment
        aln = Alignment.from_sequences([f"t{i}" for i in range(6)], seqs)
        best = None
        for seed in range(4):
            eng = LikelihoodEngine(aln, jc69(), 1)
            start = Tree.random_topology(6, np.random.default_rng(seed))
            result = hill_climb(eng, start, max_rounds=6)
            if best is None or result.loglik > best.loglik:
                best = result
        splits = _bipartitions(best.tree)
        assert frozenset({0, 1, 2}) in splits


class TestBootstrapAnalysis:
    def test_counts_and_records(self):
        aln = synthesize_alignment(6, 80, seed=4)
        analysis = run_bootstrap_analysis(
            aln, jc69(), n_bootstraps=3, max_rounds=2, seed=5,
            n_rate_categories=1, record_kernels=True,
        )
        assert analysis.n_replicates == 3
        assert analysis.best.loglik < 0
        for rep in analysis.replicates:
            assert rep.kernel_log.newview_calls > 0
            assert rep.kernel_log.events

    def test_branch_support_in_unit_range(self):
        aln = synthesize_alignment(6, 80, seed=6)
        analysis = run_bootstrap_analysis(
            aln, jc69(), n_bootstraps=3, max_rounds=2, seed=7,
            n_rate_categories=1,
        )
        for split, support in branch_support(analysis):
            assert 0.0 <= support <= 1.0
            assert 1 < len(split) < 5

    def test_zero_bootstraps_allowed(self):
        aln = synthesize_alignment(5, 60, seed=8)
        analysis = run_bootstrap_analysis(
            aln, jc69(), n_bootstraps=0, max_rounds=1, n_rate_categories=1
        )
        assert analysis.n_replicates == 0
        assert branch_support(analysis)[0][1] == 0.0

    def test_validation(self):
        aln = synthesize_alignment(5, 60, seed=9)
        with pytest.raises(ValueError):
            run_bootstrap_analysis(aln, jc69(), n_inferences=0)


class TestSimulatorBridge:
    def _recorded_log(self):
        aln = synthesize_alignment(6, 120, seed=10)
        eng = LikelihoodEngine(aln, hky(), 2)
        eng.log.record = True
        tree = Tree.random_topology(6, np.random.default_rng(10))
        eng.optimize_branches(tree)
        return eng.log, aln

    def test_trace_preserves_event_order_and_mix(self):
        log, aln = self._recorded_log()
        trace = trace_from_kernel_log(log)
        assert trace.n_tasks == len(log.events)
        assert [i.task.function for i in trace.items] == [
            k for k, _ in log.events
        ]
        assert trace.scale == 1.0

    def test_task_durations_scale_with_patterns(self):
        cm = KernelCostModel()
        small = cm.task("newview", 100)
        large = cm.task("newview", 1000)
        assert large.spe_time == pytest.approx(10 * small.spe_time)

    def test_42sc_anchoring(self):
        cm = KernelCostModel()
        t = cm.task("newview", 1167)
        assert t.spe_time == pytest.approx(104e-6)
        assert t.loop.iterations == 228

    def test_trace_runs_through_simulator(self):
        log, aln = self._recorded_log()
        trace = trace_from_kernel_log(log)
        from repro.cell.machine import CellMachine
        from repro.core.runtime import EDTLPRuntime, ProcContext
        from repro.mpi.master_worker import WorkDispenser
        from repro.mpi.process import mpi_worker
        from repro.sim.engine import Environment

        class OneTrace:
            bootstraps = 1
            def trace(self, i):
                return trace

        env = Environment()
        machine = CellMachine(env)
        rt = EDTLPRuntime(env, machine)
        disp = WorkDispenser(env, 1, 1)
        ctx = ProcContext(rank=0, cell_id=0,
                          thread=machine.cores[0].thread("m0"))
        p = env.process(mpi_worker(ctx, rt, disp, OneTrace()))
        env.run_until_complete(p)
        assert rt.stats.offloads + rt.stats.ppe_fallbacks == trace.n_tasks

    def test_unrecorded_log_rejected(self):
        from repro.phylo.likelihood import KernelLog
        with pytest.raises(ValueError):
            trace_from_kernel_log(KernelLog())

    def test_profile_report_shares(self):
        log, _ = self._recorded_log()
        rep = profile_report([log])
        assert rep["newview_share"] + rep["evaluate_share"] + rep[
            "makenewz_share"
        ] == pytest.approx(1.0)
        # Traversal-dominated workloads call newview most.
        assert rep["newview_calls"] > rep["evaluate_calls"]


class TestFitProfile:
    def _logs(self):
        from repro.phylo import hky, run_bootstrap_analysis, synthesize_alignment

        aln = synthesize_alignment(8, 200, seed=1)
        analysis = run_bootstrap_analysis(
            aln, hky(), n_bootstraps=2, max_rounds=2,
            record_kernels=True, n_rate_categories=2,
        )
        return [r.kernel_log for r in analysis.replicates]

    def test_shares_sum_to_one(self):
        from repro.phylo import fit_profile

        prof = fit_profile(self._logs())
        assert sum(f.time_share for f in prof.functions) == pytest.approx(1.0)
        assert prof.name.endswith("-fitted")

    def test_hardware_ratios_inherited(self):
        from repro.phylo import fit_profile
        from repro.workloads import RAXML_42SC

        prof = fit_profile(self._logs())
        assert prof.ppe_slowdown == pytest.approx(
            RAXML_42SC.ppe_slowdown, rel=0.01
        )
        assert prof.naive_slowdown == pytest.approx(
            RAXML_42SC.naive_slowdown, rel=0.01
        )

    def test_fitted_profile_drives_scheduler(self):
        from repro import edtlp, run_experiment
        from repro.phylo import fit_profile
        from repro.workloads import Workload

        prof = fit_profile(self._logs())
        wl = Workload(bootstraps=2, tasks_per_bootstrap=60, profile=prof)
        r = run_experiment(edtlp(), wl)
        assert r.offloads + r.ppe_fallbacks == 120
        assert r.makespan > 0

    def test_unrecorded_logs_rejected(self):
        from repro.phylo import fit_profile
        from repro.phylo.likelihood import KernelLog

        with pytest.raises(ValueError):
            fit_profile([KernelLog()])
