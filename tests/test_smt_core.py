"""Tests for the SMT PPE core model (run queue, quantum, spin, SMT slowdown)."""

import pytest

from repro.sim import Environment
from repro.cell.smt import SMTCore


def make_core(**kw):
    env = Environment()
    defaults = dict(n_contexts=2, smt_efficiency=0.5, quantum=10e-3, switch_cost=0.0)
    defaults.update(kw)
    return env, SMTCore(env, **defaults)


def test_single_thread_runs_at_full_speed():
    env, core = make_core()
    t = core.thread("a")

    def proc():
        yield t.run(1.0)
        return env.now

    assert env.run_until_complete(env.process(proc())) == pytest.approx(1.0)


def test_two_threads_share_with_smt_efficiency():
    # Two equal jobs, efficiency 0.5 each: both finish at work/0.5.
    env, core = make_core(smt_efficiency=0.5)
    done = []

    for name in ("a", "b"):
        t = core.thread(name)

        def proc(t=t, name=name):
            yield t.run(1.0)
            done.append((name, env.now))

        env.process(proc())
    env.run()
    assert done[0][1] == pytest.approx(2.0)
    assert done[1][1] == pytest.approx(2.0)


def test_speed_recovers_when_sibling_leaves():
    # Job a: 1.0 work; job b: 0.25 work.  Both at 0.5 speed until b ends at
    # t=0.5 (0.25/0.5); a then has 0.75 work left at full speed -> t=1.25.
    env, core = make_core(smt_efficiency=0.5)
    times = {}

    def proc(name, work):
        t = core.thread(name)
        yield t.run(work)
        times[name] = env.now

    env.process(proc("a", 1.0))
    env.process(proc("b", 0.25))
    env.run()
    assert times["b"] == pytest.approx(0.5)
    assert times["a"] == pytest.approx(1.25)


def test_third_thread_waits_for_quantum():
    # 3 CPU-bound jobs on 2 contexts: the third starts only at a quantum
    # boundary.
    env, core = make_core(smt_efficiency=1.0, quantum=0.010)
    starts = {}
    ends = {}

    def proc(name):
        t = core.thread(name)
        starts[name] = env.now
        yield t.run(0.005)
        ends[name] = env.now

    for n in ("a", "b", "c"):
        env.process(proc(n))
    env.run()
    # a and b finish their 5 ms at t=5 ms; c then runs 5 ms more.
    assert ends["a"] == pytest.approx(0.005)
    assert ends["c"] == pytest.approx(0.010)


def test_round_robin_fairness_under_quantum():
    # Two long jobs + one context: each gets alternating quanta.
    env, core = make_core(n_contexts=1, quantum=0.010, smt_efficiency=1.0)
    ends = {}

    def proc(name):
        t = core.thread(name)
        yield t.run(0.015)
        ends[name] = env.now

    env.process(proc("a"))
    env.process(proc("b"))
    env.run()
    # a: [0,10)+[20,25) -> ends 25 ms; b: [10,20)+[25,30) -> ends 30 ms.
    assert ends["a"] == pytest.approx(0.025)
    assert ends["b"] == pytest.approx(0.030)


def test_switch_cost_charged_on_occupant_change():
    env, core = make_core(n_contexts=1, switch_cost=0.001, quantum=1.0)
    ends = {}

    def proc(name, delay):
        t = core.thread(name)
        yield env.timeout(delay)
        yield t.run(0.010)
        ends[name] = env.now

    env.process(proc("a", 0))
    env.process(proc("b", 0))
    env.run()
    # First occupant of a fresh context pays nothing; b pays one switch.
    assert ends["a"] == pytest.approx(0.010)
    assert ends["b"] == pytest.approx(0.021)
    assert core.switches == 1


def test_no_switch_cost_for_back_to_back_requests():
    env, core = make_core(n_contexts=1, switch_cost=0.001, quantum=1.0)
    t = core.thread("a")

    def proc():
        yield t.run(0.010)
        yield t.run(0.010)  # same timestamp resubmit: lingers in place
        return env.now

    assert env.run_until_complete(env.process(proc())) == pytest.approx(0.020)
    assert core.switches == 0


def test_spin_completes_when_target_fires_on_cpu():
    env, core = make_core()
    t = core.thread("a")
    ev = env.event()

    def firer():
        yield env.timeout(0.5)
        ev.succeed()

    def proc():
        yield t.spin_until(ev)
        return env.now

    env.process(firer())
    assert env.run_until_complete(env.process(proc())) == pytest.approx(0.5)


def test_spin_holds_context_against_ready_thread():
    # One context; spinner occupies it, a compute job waits until the
    # spinner's quantum expires.
    env, core = make_core(n_contexts=1, quantum=0.010)
    ev = env.event()
    ends = {}

    def spinner():
        t = core.thread("spin")
        yield t.spin_until(ev)
        ends["spin"] = env.now

    def worker():
        t = core.thread("work")
        yield t.run(0.001)
        ends["work"] = env.now

    def firer():
        yield env.timeout(0.050)
        ev.succeed()

    env.process(spinner())
    env.process(worker())
    env.process(firer())
    env.run()
    # Worker runs in the quantum slot after the spinner's first 10 ms.
    assert ends["work"] == pytest.approx(0.011)
    # Spinner notices the event when on CPU (it reacquires after worker).
    assert ends["spin"] == pytest.approx(0.050)


def test_spin_notice_delayed_until_rescheduled():
    # The Linux pathology: spinner preempted; its event fires while it is
    # OFF cpu; it only notices when it gets a context again.
    env, core = make_core(n_contexts=1, quantum=0.010)
    ev = env.event()
    ends = {}

    def spinner():
        t = core.thread("spin")
        yield t.spin_until(ev)
        ends["spin"] = env.now

    def hog():
        t = core.thread("hog")
        yield t.run(0.025)
        ends["hog"] = env.now

    def firer():
        # Fires at t=12ms, while the hog owns the context (spinner was
        # preempted at 10ms).
        yield env.timeout(0.012)
        ev.succeed()

    env.process(spinner())
    env.process(hog())
    env.process(firer())
    env.run()
    # Spinner regains the CPU at 20 ms (hog quantum expiry) and completes.
    assert ends["spin"] == pytest.approx(0.020)


def test_zero_work_request_completes_immediately():
    env, core = make_core()
    t = core.thread("a")

    def proc():
        yield t.run(0.0)
        return env.now

    assert env.run_until_complete(env.process(proc())) == pytest.approx(0.0)


def test_concurrent_submit_while_busy_is_error():
    env, core = make_core()
    t = core.thread("a")

    def proc():
        t.run(1.0)
        with pytest.raises(RuntimeError):
            t.run(1.0)
        yield env.timeout(0)

    env.run_until_complete(env.process(proc()))


def test_work_done_accounting():
    env, core = make_core(smt_efficiency=1.0)
    t = core.thread("a")

    def proc():
        yield t.run(0.5)
        yield t.run(0.25)

    env.run_until_complete(env.process(proc()))
    assert t.work_done == pytest.approx(0.75)


def test_busy_accounting_occupancy():
    env, core = make_core(smt_efficiency=1.0)

    def proc(name):
        t = core.thread(name)
        yield t.run(1.0)

    env.process(proc("a"))
    env.process(proc("b"))
    env.run()
    # Two contexts busy for 1s each over a 1s window -> occupancy 1.0.
    assert core.occupancy(1.0) == pytest.approx(2.0 / 2.0)


def test_many_threads_all_complete():
    env, core = make_core(n_contexts=2, smt_efficiency=0.5, quantum=0.010)
    n = 7
    done = []

    def proc(i):
        t = core.thread(f"t{i}")
        yield t.run(0.003)
        done.append(i)

    for i in range(n):
        env.process(proc(i))
    env.run()
    assert sorted(done) == list(range(n))
    # Total work = 7 * 3ms; combined throughput when saturated = 2*0.5 = 1.
    assert env.now == pytest.approx(0.021, rel=0.2)


def test_invalid_parameters_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        SMTCore(env, n_contexts=0)
    with pytest.raises(ValueError):
        SMTCore(env, smt_efficiency=0.0)
    with pytest.raises(ValueError):
        SMTCore(env, quantum=0.0)
    with pytest.raises(ValueError):
        SMTCore(env, switch_cost=-1.0)


def test_negative_work_rejected():
    env, core = make_core()
    t = core.thread("a")
    with pytest.raises(ValueError):
        t.run(-1.0)


def test_spin_without_target_rejected():
    env, core = make_core()
    t = core.thread("a")
    with pytest.raises(ValueError):
        t.spin_until(None)


def test_edtlp_vs_linux_shape_microbenchmark():
    """The core alone reproduces the qualitative Table 1 effect.

    Four threads each alternate 10 us compute with a 100 us off-load wait.
    Blocking threads (EDTLP-style) overlap all four waits; spinning
    threads (Linux-style) serialize pairs of them across quanta.
    """

    def run_mode(spin: bool) -> float:
        env = Environment()
        core = SMTCore(env, n_contexts=2, smt_efficiency=0.7,
                       quantum=10e-3, switch_cost=1.5e-6)
        n_cycles = 50

        def worker(i):
            t = core.thread(f"w{i}")
            for _ in range(n_cycles):
                yield t.run(10e-6)
                ev = env.timeout(100e-6)  # stands in for the SPE task
                if spin:
                    yield t.spin_until(ev)
                else:
                    yield ev

        procs = [env.process(worker(i)) for i in range(4)]
        env.run_until_complete(env.all_of(procs))
        return env.now

    t_block = run_mode(spin=False)
    t_spin = run_mode(spin=True)
    # Spinning wastes the contexts: at least ~1.7x slower for 4 threads.
    assert t_spin > 1.7 * t_block
