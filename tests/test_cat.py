"""Tests for the CAT per-site rate-category approximation."""

import numpy as np
import pytest

from repro.phylo import (
    Alignment,
    LikelihoodEngine,
    Tree,
    fit_cat,
    jc69,
    jc_distance_matrix,
    neighbor_joining,
    synthesize_alignment,
)
from repro.phylo.cat import estimate_pattern_rates, quantize_rates


def heterogeneous_alignment(seed=1, n=8, sites=120):
    """Half slow-evolving, half fast-evolving sites (same tree shape)."""
    slow = synthesize_alignment(n, sites, seed=seed, mean_branch=0.02)
    fast = synthesize_alignment(n, sites, seed=seed, mean_branch=0.4)
    seqs = [a + b for a, b in zip(slow.to_sequences(), fast.to_sequences())]
    return Alignment.from_sequences([f"t{i}" for i in range(n)], seqs)


class TestEngineCATMode:
    def test_single_category_equals_single_rate(self):
        aln = synthesize_alignment(6, 80, seed=2)
        tree = Tree.random_topology(6, np.random.default_rng(2))
        plain = LikelihoodEngine(aln, jc69(), 1).evaluate(tree)
        cat = LikelihoodEngine(
            aln, jc69(),
            category_rates=np.array([1.0]),
            pattern_categories=np.zeros(aln.n_patterns, dtype=int),
        ).evaluate(tree)
        assert cat == pytest.approx(plain)

    def test_selection_matches_manual_computation(self):
        aln = synthesize_alignment(5, 60, seed=3)
        tree = Tree.random_topology(5, np.random.default_rng(3))
        rates = np.array([0.5, 2.0])
        cat = np.random.default_rng(0).integers(0, 2, aln.n_patterns)
        engine = LikelihoodEngine(
            aln, jc69(), category_rates=rates, pattern_categories=cat
        )
        got = engine.evaluate(tree)
        # Manual: evaluate each pure-rate engine, stitch per pattern.
        per_rate_logs = []
        for r in rates:
            e = LikelihoodEngine(aln, jc69(), category_rates=np.array([r]))
            e.full_traversal(tree)
            clv, scale = e._clv[tree.root.id]
            site = np.einsum("srx,x->s", clv, e.model.frequencies)
            per_rate_logs.append(np.log(site) - scale * np.log(1e100))
        stitched = np.where(cat == 0, per_rate_logs[0], per_rate_logs[1])
        assert got == pytest.approx(float(aln.weights @ stitched))

    def test_edge_loglik_consistent_in_cat_mode(self):
        aln = synthesize_alignment(6, 80, seed=4)
        tree = Tree.random_topology(6, np.random.default_rng(4))
        rng = np.random.default_rng(1)
        engine = LikelihoodEngine(
            aln, jc69(),
            category_rates=np.array([0.3, 1.0, 3.0]),
            pattern_categories=rng.integers(0, 3, aln.n_patterns),
        )
        full = engine.evaluate(tree)
        engine.full_traversal(tree)
        for node in tree.branches()[:4]:
            assert engine.edge_loglik(tree, node, node.length) == (
                pytest.approx(full, rel=1e-9)
            )

    def test_makenewz_improves_in_cat_mode(self):
        aln = synthesize_alignment(6, 100, seed=5)
        tree = Tree.random_topology(6, np.random.default_rng(5))
        rng = np.random.default_rng(2)
        engine = LikelihoodEngine(
            aln, jc69(),
            category_rates=np.array([0.5, 1.5]),
            pattern_categories=rng.integers(0, 2, aln.n_patterns),
        )
        before = engine.evaluate(tree)
        engine.full_traversal(tree)
        engine.makenewz(tree, tree.branches()[1])
        after = engine.evaluate(tree, full=True)
        assert after >= before - 1e-9

    def test_validation(self):
        aln = synthesize_alignment(5, 40, seed=6)
        with pytest.raises(ValueError, match="requires category_rates"):
            LikelihoodEngine(
                aln, jc69(), pattern_categories=np.zeros(aln.n_patterns, int)
            )
        with pytest.raises(ValueError):
            LikelihoodEngine(aln, jc69(), category_rates=np.array([-1.0]))
        with pytest.raises(ValueError, match="per pattern"):
            LikelihoodEngine(
                aln, jc69(), category_rates=np.array([1.0]),
                pattern_categories=np.zeros(3, int),
            )
        with pytest.raises(ValueError, match="out of range"):
            LikelihoodEngine(
                aln, jc69(), category_rates=np.array([1.0]),
                pattern_categories=np.ones(aln.n_patterns, int),
            )


class TestFitting:
    def test_pattern_rates_separate_fast_and_slow(self):
        aln = heterogeneous_alignment()
        tree = neighbor_joining(jc_distance_matrix(aln))
        LikelihoodEngine(aln, jc69(), 1).optimize_branches(tree)
        rates = estimate_pattern_rates(aln, jc69(), tree)
        # Clear heterogeneity: wide spread of per-pattern rates.
        assert rates.max() / rates.min() > 4.0

    def test_quantize_properties(self):
        rng = np.random.default_rng(0)
        rates = rng.gamma(0.5, 2.0, size=200)
        w = rng.integers(1, 5, size=200).astype(float)
        cat_rates, assignment = quantize_rates(rates, w, 4)
        assert len(cat_rates) == 4
        assert assignment.min() == 0 and assignment.max() == 3
        # Weighted mean rate normalized to 1.
        assert np.average(cat_rates[assignment], weights=w) == (
            pytest.approx(1.0)
        )
        # Category rates are ordered (quantile construction).
        assert list(cat_rates) == sorted(cat_rates)

    def test_quantize_fewer_unique_than_categories(self):
        rates = np.array([1.0, 1.0, 2.0, 2.0])
        w = np.ones(4)
        cat_rates, assignment = quantize_rates(rates, w, 10)
        assert len(cat_rates) <= 2

    def test_quantize_validation(self):
        with pytest.raises(ValueError):
            quantize_rates(np.ones(3), np.ones(2), 2)
        with pytest.raises(ValueError):
            quantize_rates(np.ones(3), np.ones(3), 0)

    def test_cat_beats_single_rate_on_heterogeneous_data(self):
        aln = heterogeneous_alignment()
        tree = neighbor_joining(jc_distance_matrix(aln))
        single = LikelihoodEngine(aln, jc69(), 1)
        single.optimize_branches(tree)
        ll_single = single.evaluate(tree)
        ll_cat = fit_cat(aln, jc69(), tree, n_categories=4).evaluate(tree)
        assert ll_cat > ll_single + 10.0

    def test_cat_neutral_on_homogeneous_data(self):
        aln = synthesize_alignment(8, 200, seed=7)
        tree = neighbor_joining(jc_distance_matrix(aln))
        LikelihoodEngine(aln, jc69(), 1).optimize_branches(tree)
        ll_single = LikelihoodEngine(aln, jc69(), 1).evaluate(tree)
        ll_cat = fit_cat(aln, jc69(), tree, n_categories=4).evaluate(tree)
        # CAT can only help (it selects the best rate per pattern).
        assert ll_cat >= ll_single - 1e-6

    def test_grid_validation(self):
        aln = synthesize_alignment(5, 40, seed=8)
        tree = Tree.random_topology(5, np.random.default_rng(8))
        with pytest.raises(ValueError):
            estimate_pattern_rates(aln, jc69(), tree,
                                   rate_grid=np.array([1.0]))
