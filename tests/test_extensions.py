"""Tests for the extension studies: profile site-scaling and the
power/cost-efficiency model."""

import pytest

from repro import Workload, edtlp, run_experiment, static_hybrid
from repro.analysis.efficiency_study import (
    DEFAULT_ECONOMICS,
    PlatformEconomics,
    efficiency_table,
)
from repro.workloads import RAXML_42SC


class TestSiteScaling:
    def test_identity_at_native_length(self):
        p = RAXML_42SC.scaled_to_sites(1167)
        assert p.optimized_seconds == pytest.approx(
            RAXML_42SC.optimized_seconds
        )
        assert p.loop_iterations == RAXML_42SC.loop_iterations
        assert p.mean_task_us == pytest.approx(RAXML_42SC.mean_task_us)

    def test_spe_work_scales_linearly(self):
        p2 = RAXML_42SC.scaled_to_sites(2334)
        assert p2.spe_seconds == pytest.approx(2 * RAXML_42SC.spe_seconds)
        # PPE bookkeeping does not scale.
        assert p2.ppe_seconds == pytest.approx(RAXML_42SC.ppe_seconds)

    def test_loop_iterations_scale(self):
        assert RAXML_42SC.scaled_to_sites(2334).loop_iterations == 456
        assert RAXML_42SC.scaled_to_sites(584).loop_iterations == 114

    def test_anchor_consistency_preserved(self):
        # The derived slowdown factors must remain physical.
        for sites in (600, 5000, 51089):
            p = RAXML_42SC.scaled_to_sites(sites)
            assert p.ppe_slowdown > 1.0
            assert p.naive_slowdown > 1.0
            assert 0.0 < p.spe_fraction < 1.0

    def test_invalid_sites(self):
        with pytest.raises(ValueError):
            RAXML_42SC.scaled_to_sites(0)

    def test_llp_speedup_improves_with_length(self):
        """The Section 5.3 observation, end to end."""
        speedups = []
        for sites in (600, 1167, 5000):
            prof = RAXML_42SC.scaled_to_sites(sites)
            wl = Workload(bootstraps=1, tasks_per_bootstrap=120,
                          profile=prof)
            serial = run_experiment(edtlp(n_processes=1), wl).makespan
            par = run_experiment(static_hybrid(5, n_processes=1), wl).makespan
            speedups.append(serial / par)
        assert speedups[0] < speedups[1] < speedups[2]


class TestEfficiencyStudy:
    def test_energy_computation(self):
        e = PlatformEconomics("x", watts=100.0, price_usd=500.0)
        assert e.energy_joules(10.0) == pytest.approx(1000.0)
        with pytest.raises(ValueError):
            e.energy_joules(-1.0)

    def test_invalid_economics(self):
        with pytest.raises(ValueError):
            PlatformEconomics("x", watts=0.0, price_usd=1.0)
        with pytest.raises(ValueError):
            PlatformEconomics("x", watts=1.0, price_usd=0.0)

    def test_table_contains_all_platforms(self):
        makespans = {
            "Cell (MGPS)": 157.0,
            "Intel Xeon": 589.0,
            "IBM Power5": 166.0,
        }
        text = efficiency_table(makespans, bootstraps=32)
        for name in makespans:
            assert name in text
        assert "bootstraps/kJ" in text

    def test_unknown_platform_rejected(self):
        with pytest.raises(KeyError):
            efficiency_table({"Mystery": 1.0}, bootstraps=1)

    def test_cell_wins_both_ratios_with_defaults(self):
        # Using the Figure 10 makespans at 32 bootstraps.
        makespans = {
            "Cell (MGPS)": 157.2,
            "Intel Xeon": 588.8,
            "IBM Power5": 165.9,
        }
        E = DEFAULT_ECONOMICS
        cell = E["Cell (MGPS)"]
        for other_name in ("Intel Xeon", "IBM Power5"):
            other = E[other_name]
            assert cell.energy_joules(makespans["Cell (MGPS)"]) < (
                other.energy_joules(makespans[other_name])
            )
            assert makespans["Cell (MGPS)"] * cell.price_usd < (
                makespans[other_name] * other.price_usd
            )

    def test_invalid_bootstraps(self):
        with pytest.raises(ValueError):
            efficiency_table({"Cell (MGPS)": 1.0}, bootstraps=0)
