"""Randomized stress tests of the scheduling runtime (hypothesis).

The paper's future work calls for "more stress tests of our runtime
system".  These property tests throw randomized task streams at every
scheduler and check the invariants that must survive any workload:
completion, conservation, resource hygiene, physical lower bounds and
determinism.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cell.local_store import CodeImage
from repro.cell.machine import CellMachine
from repro.core.runtime import (
    EDTLPRuntime,
    LinuxRuntime,
    MGPSRuntime,
    ProcContext,
    StaticHybridRuntime,
)
from repro.mpi.master_worker import WorkDispenser
from repro.mpi.process import mpi_worker
from repro.sim.engine import Environment
from repro.workloads import FixedTraceWorkload
from repro.workloads.taskspec import BootstrapTrace, LoopSpec, OffloadItem, TaskSpec

US = 1e-6
KB = 1024

task_st = st.builds(
    TaskSpec,
    function=st.sampled_from(["alpha", "beta", "gamma"]),
    spe_time=st.floats(min_value=2e-6, max_value=400e-6),
    ppe_time=st.floats(min_value=2e-6, max_value=600e-6),
    naive_spe_time=st.floats(min_value=2e-6, max_value=900e-6),
    loop=st.one_of(
        st.none(),
        st.builds(
            LoopSpec,
            iterations=st.integers(min_value=1, max_value=500),
            coverage=st.floats(min_value=0.0, max_value=0.95),
            reduction=st.booleans(),
            bytes_per_iteration=st.integers(min_value=0, max_value=512),
        ),
    ),
    working_set=st.integers(min_value=0, max_value=100 * KB),
    data_key=st.one_of(st.none(), st.sampled_from(["d0", "d1", "d2"])),
)

item_st = st.builds(
    OffloadItem,
    ppe_gap=st.floats(min_value=0.0, max_value=100e-6),
    task=task_st,
)


@st.composite
def trace_st(draw, index=0):
    items = draw(st.lists(item_st, min_size=1, max_size=25))
    return BootstrapTrace(
        index=index,
        items=tuple(items),
        tail_ppe=draw(st.floats(min_value=0.0, max_value=50e-6)),
        scale=1.0,
        code_image=CodeImage("stress", "serial", 64 * KB),
        llp_image=CodeImage("stress", "llp", 70 * KB),
    )


@st.composite
def workload_st(draw):
    n = draw(st.integers(min_value=1, max_value=4))
    return FixedTraceWorkload([draw(trace_st(index=i)) for i in range(n)])


def run(runtime_cls, wl, n_procs, **kw):
    env = Environment()
    machine = CellMachine(env)
    rt = runtime_cls(env, machine, **kw)
    disp = WorkDispenser(env, wl.bootstraps, n_procs)
    procs = []
    for rank in range(n_procs):
        core = machine.cores[0]
        affinity = rank % core.n_contexts if runtime_cls is LinuxRuntime else None
        ctx = ProcContext(rank=rank, cell_id=0,
                          thread=core.thread(f"m{rank}", affinity=affinity))
        if runtime_cls is LinuxRuntime:
            ctx.pinned_spe = machine.spes[rank % machine.n_spes]
        procs.append(env.process(mpi_worker(ctx, rt, disp, wl)))
    env.run_until_complete(env.all_of(procs))
    return env, machine, rt


def best_case(task, n_spes):
    """Physical lower bound on one task's completion time."""
    spe_best = task.spe_time
    if task.loop is not None and task.loop.iterations > 1:
        cov = task.loop.coverage
        spe_best = task.spe_time * (1.0 - cov + cov / n_spes)
    return min(spe_best, task.ppe_time)


RUNTIMES = [
    (EDTLPRuntime, {}),
    (EDTLPRuntime, {"locality_aware": True}),
    (LinuxRuntime, {}),
    (StaticHybridRuntime, {"degree": 3}),
    (MGPSRuntime, {}),
]


@pytest.mark.parametrize("runtime_cls,kw", RUNTIMES,
                         ids=["edtlp", "edtlp-loc", "linux", "hybrid3", "mgps"])
@given(wl=workload_st(), n_procs=st.integers(min_value=1, max_value=4))
@settings(max_examples=20, deadline=None)
def test_runtime_invariants(runtime_cls, kw, wl, n_procs):
    n_procs = min(n_procs, wl.bootstraps)
    env, machine, rt = run(runtime_cls, wl, n_procs, **kw)

    total_tasks = sum(wl.trace(i).n_tasks for i in range(wl.bootstraps))

    # Conservation: every task executed exactly once, somewhere.
    assert rt.stats.offloads + rt.stats.ppe_fallbacks == total_tasks
    assert rt.stats.bootstraps_done == wl.bootstraps

    # Resource hygiene: nothing busy, nothing leaked.
    assert all(not s.busy for s in machine.spes)
    if runtime_cls is not LinuxRuntime:
        assert machine.pool.n_free == machine.pool.n_total
    assert machine.pool.n_waiting == 0

    # Physics: utilization within bounds, makespan above trivial bounds.
    makespan = env.now
    assert makespan > 0
    for s in machine.spes:
        assert s.busy_seconds <= makespan + 1e-12
    total_gap = sum(wl.trace(i).total_ppe_time for i in range(wl.bootstraps))
    assert makespan >= total_gap / machine.cores[0].n_contexts - 1e-9
    # No task can finish faster than its best-case duration.  A task
    # with a parallel loop can legitimately beat *both* serial times:
    # its covered fraction may be split across every SPE in the machine.
    longest = max(
        best_case(i.task, machine.n_spes)
        for b in range(wl.bootstraps)
        for i in wl.trace(b).items
    )
    assert makespan >= longest - 1e-12


def test_llp_split_may_beat_both_serial_times():
    """Regression (hypothesis-discovered): a high-coverage loop split
    across 3 SPEs finishes faster than min(spe_time, ppe_time); the
    makespan bound must account for loop-level parallelism."""
    task = TaskSpec(
        function="alpha",
        spe_time=0.0003102383503029622,
        ppe_time=0.00016238799099557702,
        naive_spe_time=0.0008834229215917751,
        loop=LoopSpec(iterations=3, coverage=0.875, reduction=False,
                      bytes_per_iteration=0),
    )
    wl = FixedTraceWorkload([BootstrapTrace(
        index=0,
        items=(OffloadItem(ppe_gap=0.0, task=task),),
        tail_ppe=0.0,
        scale=1.0,
        code_image=CodeImage("stress", "serial", 64 * KB),
        llp_image=CodeImage("stress", "llp", 70 * KB),
    )])
    env, machine, rt = run(StaticHybridRuntime, wl, 1, degree=3)
    assert env.now < min(task.spe_time, task.ppe_time)
    assert env.now >= best_case(task, machine.n_spes) - 1e-12


@given(wl=workload_st())
@settings(max_examples=10, deadline=None)
def test_determinism_across_reruns(wl):
    n = min(2, wl.bootstraps)
    t1 = run(MGPSRuntime, wl, n)[0].now
    t2 = run(MGPSRuntime, wl, n)[0].now
    assert t1 == t2


@given(wl=workload_st())
@settings(max_examples=10, deadline=None)
def test_edtlp_never_slower_than_linux_by_much(wl):
    """Pure scheduling property: with the granularity governor disabled
    (its EWMA decisions depend on off-load *order*, which legitimately
    differs between schedulers on adversarial tiny-task streams), EDTLP
    may tie Linux at low process counts — spinning in place avoids the
    block/resume switches — but must never lose beyond a switch budget.
    """
    n = min(4, wl.bootstraps)
    t_edtlp = run(EDTLPRuntime, wl, n, granularity_enabled=False)[0].now
    t_linux = run(LinuxRuntime, wl, n, granularity_enabled=False)[0].now
    total_tasks = sum(wl.trace(i).n_tasks for i in range(wl.bootstraps))
    switch_budget = total_tasks * 10e-6  # a few switch costs per task
    assert t_edtlp <= t_linux * 1.10 + switch_budget
