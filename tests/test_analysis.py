"""Tests for metrics and report rendering."""

import pytest

from repro.analysis import (
    best_scheduler,
    crossover,
    efficiency,
    format_series,
    format_table,
    paper_comparison,
    scaling_efficiency,
    speedup,
)
from repro.core.results import ScheduleResult


def result(makespan, name="s", bootstraps=1):
    return ScheduleResult(
        scheduler=name,
        bootstraps=bootstraps,
        n_processes=1,
        makespan=makespan,
        raw_makespan=makespan,
        scale=1.0,
        spe_utilization=0.5,
        ppe_occupancy=0.5,
        offloads=10,
        ppe_fallbacks=0,
        offload_waits=0,
        llp_invocations=0,
        llp_mode_switches=0,
        code_loads=1,
        ppe_context_switches=0,
        per_spe_busy=(0.5,) * 8,
    )


class TestMetrics:
    def test_speedup(self):
        assert speedup(result(20.0), result(10.0)) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            speedup(result(10.0), result(0.0))

    def test_efficiency(self):
        r = result(10.0)
        assert efficiency(r, serial_seconds=80.0) == pytest.approx(1.0)
        assert efficiency(r, serial_seconds=40.0) == pytest.approx(0.5)

    def test_scaling_efficiency(self):
        rs = [result(10.0, bootstraps=1), result(20.0, bootstraps=2),
              result(50.0, bootstraps=4)]
        eff = scaling_efficiency(rs)
        assert eff[0] == pytest.approx(1.0)
        assert eff[1] == pytest.approx(1.0)
        assert eff[2] == pytest.approx(0.8)
        assert scaling_efficiency([]) == []

    def test_crossover(self):
        xs = [1, 2, 4, 8]
        a = [10, 20, 40, 100]
        b = [30, 30, 50, 60]
        assert crossover(xs, a, b) == 8
        assert crossover(xs, b, a) == 1
        assert crossover(xs, a, [200] * 4) == -1
        with pytest.raises(ValueError):
            crossover([1], [1, 2], [1])

    def test_best_scheduler(self):
        assert best_scheduler({"a": result(10.0), "b": result(5.0)}) == "b"
        with pytest.raises(ValueError):
            best_scheduler({})

    def test_result_helpers(self):
        r = result(10.0, bootstraps=5)
        assert r.throughput == pytest.approx(0.5)
        assert r.speedup_over(result(20.0)) == pytest.approx(2.0)
        assert "bootstraps" in r.summary()


class TestReport:
    def test_format_table_alignment(self):
        out = format_table(["a", "bb"], [[1, 2.5], [30, 4.25]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert "2.50" in out and "4.25" in out

    def test_format_series_columns(self):
        out = format_series("F", "x", [1, 2], {"s1": [1.0, 2.0], "s2": [3.0, 4.0]})
        assert "s1" in out and "s2" in out and "4.00" in out

    def test_paper_comparison_ratio(self):
        out = paper_comparison("C", ["k"], [10.0], [12.0])
        assert "1.20" in out

    def test_paper_comparison_validates_lengths(self):
        with pytest.raises(ValueError):
            paper_comparison("C", ["a"], [1.0], [1.0, 2.0])
