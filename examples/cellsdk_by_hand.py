#!/usr/bin/env python
"""Hand-rolling an off-load loop with the raw (libspe-style) SDK.

Before the paper's runtime existed, Cell programmers wrote this: create
SPE contexts, load program images, ping-pong mailboxes, manage DMA — for
*every* application.  This example off-loads a small RAxML-like kernel
stream twice:

1. by hand, against the `repro.cellsdk` façade (one context, serial
   mailbox protocol, the naive structure Section 5.1 starts from);
2. through the EDTLP runtime, which multiplexes all eight SPEs from the
   same task stream with two lines of user code.

The point is the paper's motivation made concrete: the hand-rolled
version is longer, easier to get wrong, and leaves 7 of 8 SPEs idle.
"""

from repro import Workload, edtlp, run_experiment
from repro.cell.machine import CellMachine
from repro.cellsdk import SpeProgram, spe_context_create
from repro.sim import Environment


def hand_rolled(workload: Workload) -> float:
    """One PPE thread drives one SPE through the whole trace by hand."""
    env = Environment()
    machine = CellMachine(env)
    trace = workload.trace(0)

    def spu_kernel(spu):
        """SPU side: fetch inputs, compute, commit, report."""
        while True:
            duration = yield spu.read_mbox()
            if duration is None:
                return
            yield spu.dma_get(32 * 1024)   # likelihood vectors in
            yield spu.compute(duration)
            yield spu.dma_put(16 * 1024)   # results out
            yield from spu.write_mbox("done")

    def ppe_main():
        ctx = yield from spe_context_create(env, machine)
        yield from ctx.load_program(
            SpeProgram("raxml3", spu_kernel, image_kb=117)
        )
        run = ctx.run()
        for item in trace.items:
            yield env.timeout(item.ppe_gap)        # PPE-side compute
            yield from ctx.write_in_mbox(item.task.spe_time)
            yield ctx.read_out_mbox()              # block until done
        yield from ctx.write_in_mbox(None)
        yield run
        ctx.destroy()

    env.run_until_complete(env.process(ppe_main()))
    return env.now * trace.scale


def main() -> None:
    workload = Workload(bootstraps=8, tasks_per_bootstrap=300, seed=0)

    by_hand = hand_rolled(workload)  # one bootstrap, one SPE, by hand
    # What the runtime does with the same per-bootstrap stream: all 8
    # bootstraps, all 8 SPEs, scheduling handled for you.
    runtime = run_experiment(edtlp(), workload)

    print("Hand-rolled SDK loop (1 bootstrap, 1 SPE, ~40 lines of "
          "PPE+SPU protocol code):")
    print(f"    {by_hand:7.2f} s   -> {8 * by_hand:7.2f} s for 8 bootstraps "
          f"run back to back")
    print("EDTLP runtime (8 bootstraps, 8 SPEs, 2 lines of user code):")
    print(f"    {runtime.makespan:7.2f} s   "
          f"(SPE utilization {runtime.spe_utilization:.0%})")
    print(f"\nSpeedup from letting the runtime schedule: "
          f"{8 * by_hand / runtime.makespan:.1f}x")
    print(
        "\nThe hand-rolled loop is also *synchronous*: the PPE blocks on\n"
        "each mailbox reply, which is exactly the structure that strands\n"
        "SPEs under the stock OS scheduler (Section 5.2, Figure 2b)."
    )


if __name__ == "__main__":
    main()
