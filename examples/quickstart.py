#!/usr/bin/env python
"""Quickstart: schedule a RAxML-like workload on a simulated Cell BE.

Runs the same 8-bootstrap workload under the three schedulers from the
paper — the Linux baseline, EDTLP, and the adaptive MGPS — and prints
makespans (in the paper's seconds), SPE utilization and speedups.
"""

from repro import Workload, edtlp, linux, mgps, run_experiment
from repro.analysis import format_table


def main() -> None:
    # 8 independent bootstraps of the 42_SC-shaped workload; each trace is
    # compressed to 400 off-loads (results are scaled back, see DESIGN.md).
    workload = Workload(bootstraps=8, tasks_per_bootstrap=400, seed=0)

    results = {
        "Linux 2.6 (baseline)": run_experiment(linux(), workload),
        "EDTLP": run_experiment(edtlp(), workload),
        "MGPS (adaptive)": run_experiment(mgps(), workload),
    }

    base = results["Linux 2.6 (baseline)"]
    rows = []
    for name, r in results.items():
        rows.append(
            [
                name,
                r.makespan,
                f"{r.spe_utilization:.0%}",
                r.offloads,
                f"{base.makespan / r.makespan:.2f}x",
            ]
        )
    print(
        format_table(
            ["scheduler", "makespan [s]", "SPE util", "off-loads", "speedup"],
            rows,
            title="8 bootstraps of RAxML (42_SC profile) on one simulated Cell",
        )
    )
    print(
        "\nThe EDTLP scheduler switches MPI processes at off-load points\n"
        "instead of waiting for the 10 ms OS quantum, keeping all 8 SPEs\n"
        "fed; MGPS additionally turns on loop-level parallelism whenever\n"
        "task-level parallelism leaves SPEs idle."
    )


if __name__ == "__main__":
    main()
