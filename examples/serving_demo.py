#!/usr/bin/env python
"""Online serving demo: a multi-tenant job service over the blade fleet.

Runs the serving layer on the same fleet the offline scaling example
declares (``multicell_scaling.FLEET_*``): three tenants — an open-loop
Poisson stream with a deadline, a closed-loop think-time population and
a bursty batch submitter — stream jobs through admission control and a
dispatch policy at dual-Cell blades, with the MGPS-style autoscaler
resizing the active set.  Prints the SLO ledger per dispatch policy,
then re-runs the winner with a mid-stream blade death to show failover:
zero jobs lost, digests unchanged.
"""

import argparse

from multicell_scaling import FLEET_BLADE, FLEET_MAX_BLADES, FLEET_MIN_BLADES

from repro.serve import (
    BladeKill,
    FleetFaultPlan,
    ServeConfig,
    default_tenants,
    run_service,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--duration", type=float, default=1800.0, metavar="S",
                        help="arrival horizon in simulated seconds")
    parser.add_argument("--arrival-rate", type=float, default=0.05,
                        metavar="R", help="open-loop tenant rate [jobs/s]")
    parser.add_argument("--seed", type=int, default=7)
    return parser


def main() -> None:
    args = build_parser().parse_args()
    tenants = default_tenants(arrival_rate=args.arrival_rate)

    def config(**overrides) -> ServeConfig:
        base = dict(
            tenants=tenants,
            duration_s=args.duration,
            seed=args.seed,
            blade=FLEET_BLADE,
            min_blades=FLEET_MIN_BLADES,
            max_blades=FLEET_MAX_BLADES,
            autoscale=True,
        )
        base.update(overrides)
        return ServeConfig(**base)

    results = {}
    for dispatch in ("static-block", "least-loaded", "work-stealing"):
        results[dispatch] = run_service(config(dispatch=dispatch))
    for dispatch, result in results.items():
        print(result.summary_text())
        print()
    best = min(results, key=lambda d: results[d].summary["latency_p99_s"])
    print(f"lowest p99 on this workload: {best} "
          f"({results[best].summary['latency_p99_s']:.2f} s)")

    # Kill a blade mid-stream: queued and running jobs fail over and the
    # digests of every completed job match the fault-free run exactly.
    kill_at = args.duration / 3
    faulty = run_service(config(
        dispatch=best,
        faults=FleetFaultPlan(kills=(BladeKill(blade=1, at=kill_at),)),
    ))
    clean = results[best]
    common = set(clean.digest_map()) & set(faulty.digest_map())
    matched = all(
        clean.digest_map()[j] == faulty.digest_map()[j] for j in common
    )
    print(f"\nblade 1 killed at t={kill_at:g} s under {best} dispatch:")
    print(f"  {faulty.summary['completed']} jobs completed, "
          f"{faulty.lost_jobs} lost, "
          f"{faulty.summary['failovers']} failover(s)")
    print(f"  digests of {len(common)} common jobs "
          f"{'identical to the fault-free run' if matched else 'DIVERGED'}")


if __name__ == "__main__":
    main()
