#!/usr/bin/env python
"""Writing your own scheduling policy on the runtime substrate.

The runtime is layered for extension: implement a
:class:`~repro.core.runtime.SchedulingPolicy` (the *decision* half —
``llp_degree`` / ``on_dispatch`` / ``on_departure`` /
``on_capacity_change`` / ``admit``), register it by name, and every
entry point that takes a ``SchedulerSpec`` — the runner, the CLI, the
sweeps — can select it.  The *mechanics* half (SPE acquisition, DMA
timing, granularity test, fault tolerance) stays in the shared
:class:`~repro.core.runtime.OffloadEngine`; a policy never touches it.

Here we build GREEDY-LLP — "whenever SPEs are idle right now, split the
current loop across all of them" — a plausible-sounding alternative to
MGPS that skips the history window.  The comparison shows why the paper
bothers with hysteresis: the greedy policy over-commits workers at
ramp-up and mode boundaries, while MGPS's 8-off-load window filters the
noise.
"""

from repro.analysis import format_table
from repro.core import run_experiment
from repro.core.runtime import ProcContext, SchedulingPolicy, register_policy
from repro.core.schedulers import SchedulerSpec, edtlp, mgps
from repro.workloads import Workload


class GreedyLLPPolicy(SchedulingPolicy):
    """Split loops across whatever is idle at this very instant."""

    name = "greedy-llp"
    description = "split loops across every currently idle SPE (no damping)"

    def llp_degree(self, ctx: ProcContext) -> int:
        idle = self.engine.machine.pool.n_free
        # One master (about to be taken) plus every currently idle SPE,
        # capped at half the machine (Table 2's efficiency knee).
        return max(1, min(idle, self.engine.machine.n_spes // 2))


# One call makes the policy a first-class scheduler kind: the spec below
# and `SchedulerSpec(kind="greedy-llp")` anywhere else now resolve to it.
register_policy(
    "greedy-llp",
    lambda spec: GreedyLLPPolicy(),
    description=GreedyLLPPolicy.description,
)


def greedy() -> SchedulerSpec:
    return SchedulerSpec(kind="greedy-llp")


def main() -> None:
    rows = []
    for b in (1, 2, 4, 8, 16):
        wl = Workload(bootstraps=b, tasks_per_bootstrap=300, seed=0)
        r_edtlp = run_experiment(edtlp(), wl)
        r_greedy = run_experiment(greedy(), wl)
        r_mgps = run_experiment(mgps(), wl)
        rows.append(
            [b, r_edtlp.makespan, r_greedy.makespan, r_mgps.makespan]
        )
    print(
        format_table(
            ["bootstraps", "EDTLP [s]", "greedy-LLP [s]", "MGPS [s]"],
            rows,
            title="A custom policy (instantaneous greedy loop-splitting) "
                  "vs the paper's schedulers",
        )
    )
    print(
        "\nGreedy splitting matches MGPS at very low task parallelism but\n"
        "pays at medium counts: every transient idle moment triggers a\n"
        "loop split whose workers are then missing for the next arriving\n"
        "task.  MGPS's utilization-history window is exactly the damping\n"
        "the paper argues for in Section 5.4."
    )


if __name__ == "__main__":
    main()
