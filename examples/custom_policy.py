#!/usr/bin/env python
"""Writing your own scheduling policy on the runtime substrate.

The runtimes are designed for extension: subclass
:class:`~repro.core.runtime.EDTLPRuntime`, override the policy hooks
(``llp_degree`` / ``on_dispatch`` / ``on_departure``), and drive the same
machines and workloads as the built-in schedulers.

Here we build GREEDY-LLP — "whenever SPEs are idle right now, split the
current loop across all of them" — a plausible-sounding alternative to
MGPS that skips the history window.  The comparison shows why the paper
bothers with hysteresis: the greedy policy over-commits workers at
ramp-up and mode boundaries, while MGPS's 8-off-load window filters the
noise.
"""

from repro.analysis import format_table
from repro.cell.machine import CellMachine
from repro.core import run_experiment
from repro.core.runtime import EDTLPRuntime, ProcContext
from repro.core.schedulers import SchedulerSpec, edtlp, mgps
from repro.sim.engine import Environment
from repro.workloads import Workload


class GreedyLLPRuntime(EDTLPRuntime):
    """Split loops across whatever is idle at this very instant."""

    name = "greedy-llp"

    def llp_degree(self, ctx: ProcContext) -> int:
        idle = self.machine.pool.n_free
        # One master (about to be taken) plus every currently idle SPE,
        # capped at half the machine (Table 2's efficiency knee).
        return max(1, min(idle, self.machine.n_spes // 2))


class GreedySpec(SchedulerSpec):
    """Minimal spec wrapper so the runner can instantiate the policy."""

    def __init__(self):
        super().__init__(kind="edtlp", label="greedy-llp")

    def build(self, env: Environment, machine: CellMachine, tracer=None,
              metrics=None, faults=None, tolerance=None):
        return GreedyLLPRuntime(env, machine, tracer=tracer, metrics=metrics,
                                faults=faults, tolerance=tolerance)


def main() -> None:
    rows = []
    for b in (1, 2, 4, 8, 16):
        wl = Workload(bootstraps=b, tasks_per_bootstrap=300, seed=0)
        r_edtlp = run_experiment(edtlp(), wl)
        r_greedy = run_experiment(GreedySpec(), wl)
        r_mgps = run_experiment(mgps(), wl)
        rows.append(
            [b, r_edtlp.makespan, r_greedy.makespan, r_mgps.makespan]
        )
    print(
        format_table(
            ["bootstraps", "EDTLP [s]", "greedy-LLP [s]", "MGPS [s]"],
            rows,
            title="A custom policy (instantaneous greedy loop-splitting) "
                  "vs the paper's schedulers",
        )
    )
    print(
        "\nGreedy splitting matches MGPS at very low task parallelism but\n"
        "pays at medium counts: every transient idle moment triggers a\n"
        "loop split whose workers are then missing for the next arriving\n"
        "task.  MGPS's utilization-history window is exactly the damping\n"
        "the paper argues for in Section 5.4."
    )


if __name__ == "__main__":
    main()
