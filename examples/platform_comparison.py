#!/usr/bin/env python
"""Cell vs Intel Xeon vs IBM Power5 (the Figure 10 comparison).

The Cell (with MGPS) is compared against a dual Hyper-Threaded Xeon SMP
and an IBM Power5 for the same RAxML analysis.  The paper's claims: Cell
beats the dual Xeon by ~4x, and edges out the Power5 by 5-10% once the
workload reaches 8+ bootstraps.
"""

from repro.analysis import fig10_sweep


def main() -> None:
    counts = [1, 2, 4, 8, 16, 32, 64, 128]
    sweep = fig10_sweep(counts, tasks_per_bootstrap=250)
    print(sweep.render())

    xeon = dict(zip(counts, sweep.series["Intel Xeon"]))
    p5 = dict(zip(counts, sweep.series["IBM Power5"]))
    cell = dict(zip(counts, sweep.series["Cell (MGPS)"]))

    print(f"\nAt 128 bootstraps: Cell is {xeon[128] / cell[128]:.1f}x faster "
          f"than the dual Xeon and {(p5[128] / cell[128] - 1) * 100:.0f}% "
          f"faster than the Power5.")
    small = [b for b in counts if p5[b] < cell[b]]
    if small:
        print(f"The Power5 (strong single threads, huge caches) still wins "
              f"below {max(small) + 1} bootstraps — Cell needs enough "
              f"exposed parallelism to feed its SPEs.")


if __name__ == "__main__":
    main()
