#!/usr/bin/env python
"""Reproduce the Figure 7/8 story: when does each parallelization win?

Sweeps the number of bootstraps and compares plain EDTLP, the static
EDTLP-LLP hybrids (2 and 4 SPEs per loop) and adaptive MGPS, then locates
the crossover points and checks MGPS against the lower envelope — the
paper's central result.
"""

from repro.analysis import crossover, figure_sweep, format_series


def main() -> None:
    counts = [1, 2, 4, 6, 8, 10, 12, 16, 24, 32]
    sweep = figure_sweep(
        counts,
        tasks_per_bootstrap=300,
        name="Execution time vs number of bootstraps (one Cell, seconds)",
    )
    print(sweep.render())

    edtlp_t = sweep.series["EDTLP"]
    llp2_t = sweep.series["EDTLP-LLP2"]
    mgps_t = sweep.series["MGPS"]

    x1 = crossover(counts, llp2_t, edtlp_t)
    print(f"\nEDTLP-LLP2 stops beating EDTLP at {x1} bootstraps "
          f"(paper: around 5; again briefly competitive at 9-12).")

    envelope = [
        min(vals)
        for vals in zip(edtlp_t, llp2_t, sweep.series["EDTLP-LLP4"])
    ]
    worst = max(m / e for m, e in zip(mgps_t, envelope))
    print(f"MGPS stays within {worst:.2f}x of the best static scheme at "
          f"every point (it needs no oracle).")

    gain = max(e / m for e, m in zip(edtlp_t, mgps_t))
    print(f"MGPS beats plain EDTLP by up to {gain:.2f}x at low task-level "
          f"parallelism.")


if __name__ == "__main__":
    main()
