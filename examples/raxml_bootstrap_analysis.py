#!/usr/bin/env python
"""A real phylogenetic analysis, end to end, through the simulated Cell.

This example does actual science with the library's ML engine:

1. synthesize a DNA alignment (a small cousin of the paper's 42_SC);
2. infer the best-known ML tree and run non-parametric bootstraps with
   the real Felsenstein-pruning kernels (``newview`` / ``evaluate`` /
   ``makenewz``), recording every kernel invocation;
3. report bootstrap branch supports — the biological output the paper's
   machinery exists to accelerate;
4. replay the recorded kernel streams through the simulated Cell under
   EDTLP and MGPS and compare schedules.
"""

import numpy as np

from repro.cell.machine import CellMachine
from repro.core.runtime import EDTLPRuntime, MGPSRuntime, ProcContext
from repro.mpi.master_worker import WorkDispenser
from repro.mpi.process import mpi_worker
from repro.phylo import (
    branch_support,
    hky,
    majority_rule_consensus,
    profile_report,
    run_bootstrap_analysis,
    synthesize_alignment,
    trace_from_kernel_log,
)
from repro.sim.engine import Environment


class RecordedWorkload:
    """Adapts a list of recorded kernel traces to the runner interface."""

    def __init__(self, traces):
        self._traces = traces
        self.bootstraps = len(traces)

    def trace(self, index):
        return self._traces[index]


def schedule(traces, runtime_cls):
    env = Environment()
    machine = CellMachine(env)
    runtime = runtime_cls(env, machine)
    wl = RecordedWorkload(traces)
    n_procs = min(len(traces), machine.n_spes)
    dispenser = WorkDispenser(env, len(traces), n_procs)
    procs = []
    for rank in range(n_procs):
        ctx = ProcContext(
            rank=rank, cell_id=0,
            thread=machine.cores[0].thread(f"mpi{rank}"),
        )
        procs.append(env.process(mpi_worker(ctx, runtime, dispenser, wl)))
    env.run_until_complete(env.all_of(procs))
    return env.now, machine.spe_utilization(env.now), runtime.stats


def main() -> None:
    print("=== 1. Synthesizing an alignment (12 taxa x 300 sites) ===")
    alignment = synthesize_alignment(n_taxa=12, n_sites=300, seed=7)
    print(f"    {alignment.n_taxa} taxa, {alignment.n_sites} sites, "
          f"{alignment.n_patterns} unique patterns")

    print("\n=== 2. ML inference + bootstraps (real likelihood kernels) ===")
    model = hky(frequencies=(0.3, 0.2, 0.2, 0.3), kappa=2.5)
    analysis = run_bootstrap_analysis(
        alignment, model,
        n_bootstraps=6, n_inferences=2, max_rounds=3,
        n_rate_categories=4, seed=11, record_kernels=True,
    )
    print(f"    best tree log-likelihood: {analysis.best.loglik:.2f}")
    print(f"    best tree: {analysis.best.tree.newick(list(alignment.names))[:72]}...")

    rep = profile_report([r.kernel_log for r in analysis.replicates])
    print(f"    kernel mix over {analysis.n_replicates} bootstraps: "
          f"newview {rep['newview_share']:.0%}, "
          f"makenewz {rep['makenewz_share']:.0%}, "
          f"evaluate {rep['evaluate_share']:.0%} "
          f"(paper's gprof: 77%, 20%, 2% of time)")

    print("\n=== 3. Bootstrap branch supports ===")
    for split, support in branch_support(analysis):
        taxa = ",".join(alignment.names[i][-2:] for i in sorted(split))
        print(f"    {{{taxa}}}: {support:.2f}")

    cons, cons_support = majority_rule_consensus(
        [r.result.tree for r in analysis.replicates]
    )
    print(f"    majority-rule consensus: {len(cons_support)} supported "
          f"clades, e.g. {cons.newick(list(alignment.names))[:60]}...")

    print("\n=== 4. Replaying the kernel streams on the simulated Cell ===")
    traces = [
        trace_from_kernel_log(r.kernel_log, index=r.index)
        for r in analysis.replicates
    ]
    serial = sum(t.serial_estimate for t in traces)
    print(f"    {sum(t.n_tasks for t in traces)} recorded off-loads, "
          f"{serial * 1e3:.1f} ms serial work")
    for name, cls in (("EDTLP", EDTLPRuntime), ("MGPS", MGPSRuntime)):
        makespan, util, stats = schedule(traces, cls)
        print(f"    {name:6s}: {makespan * 1e3:8.2f} ms  "
              f"(SPE util {util:.0%}, {stats.llp_invocations} LLP "
              f"invocations, speedup {serial / makespan:.2f}x over serial)")


if __name__ == "__main__":
    main()
