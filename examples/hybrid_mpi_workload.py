#!/usr/bin/env python
"""The generalization claim: MGPS on a hybrid MPI (BSP) workload.

The paper closes by arguing its schedulers generalize "particularly
[to applications] written in MPI or in the hybrid MPI/OpenMP model"
(Section 6).  This example tests that claim on the classic hard case for
bulk-synchronous MPI codes: *load imbalance*.  Eight ranks iterate
compute phases separated by barriers; rank 0 is a straggler carrying a
multiple of everyone else's load.

Watch what happens at each phase tail: under EDTLP, seven ranks idle at
the barrier while the straggler grinds alone on one SPE.  MGPS notices
the collapse of task-level parallelism (U drops in its history window)
and work-shares the straggler's loops across the idle SPEs.
"""

from repro.analysis import format_table
from repro.core import run_bsp_experiment
from repro.core.schedulers import edtlp, linux, mgps
from repro.workloads import BSPWorkload


def main() -> None:
    rows = []
    for imbalance in (0.0, 1.0, 2.0, 4.0):
        wl = BSPWorkload(
            n_processes=8, iterations=8, tasks_per_iteration=60,
            imbalance=imbalance, seed=3,
        )
        e = run_bsp_experiment(edtlp(), wl)
        m = run_bsp_experiment(mgps(), wl)
        rows.append(
            [
                f"{1 + imbalance:.0f}x",
                e.makespan * 1e3,
                m.makespan * 1e3,
                f"{e.makespan / m.makespan:.2f}x",
                m.llp_invocations,
                f"{m.spe_utilization:.0%}",
            ]
        )
    print(
        format_table(
            ["straggler load", "EDTLP [ms]", "MGPS [ms]", "MGPS gain",
             "LLP invocations", "SPE util"],
            rows,
            title="Imbalanced bulk-synchronous MPI workload "
                  "(8 ranks, 8 iterations, barrier-separated)",
        )
    )
    print(
        "\nWith no imbalance MGPS stays in pure task-parallel mode (the\n"
        "handful of LLP invocations come from ramp-up).  As the straggler\n"
        "grows, MGPS converts each phase tail into loop-parallel execution\n"
        "and pulls the barrier in — adaptivity the static schemes cannot\n"
        "express because the right mode changes *within* every iteration."
    )


if __name__ == "__main__":
    main()
