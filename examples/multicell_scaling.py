#!/usr/bin/env python
"""Scaling across Cell processors (the Figure 9 / Section 5.5 argument).

The paper argues that even though 100+ bootstrap analyses are task-rich,
multigrain scheduling matters at scale because *spreading* bootstraps
across blades leaves each Cell with low task-level parallelism — exactly
the regime where MGPS switches on loop-level parallelism.
"""

from repro import BladeParams, Workload, edtlp, mgps, run_experiment
from repro.analysis import format_table


def main() -> None:
    rows = []
    for n_cells in (1, 2):
        blade = BladeParams(n_cells=n_cells)
        for b in (4, 8, 16, 32):
            wl = Workload(bootstraps=b, tasks_per_bootstrap=250)
            e = run_experiment(edtlp(), wl, blade=blade)
            m = run_experiment(mgps(), wl, blade=blade)
            rows.append(
                [n_cells, b, e.makespan, m.makespan,
                 f"{e.makespan / m.makespan:.2f}x",
                 f"{m.spe_utilization:.0%}"]
            )
    print(
        format_table(
            ["cells", "bootstraps", "EDTLP [s]", "MGPS [s]", "MGPS gain",
             "SPE util"],
            rows,
            title="One vs two Cell processors",
        )
    )

    # The Section 5.5 punchline: spreading a fixed job across Cells
    # lowers per-Cell task parallelism, which is exactly where adaptive
    # loop-level parallelism pays off.
    wl = Workload(bootstraps=8, tasks_per_bootstrap=250)
    blade2 = BladeParams(n_cells=2)
    one = run_experiment(mgps(), wl)
    two_e = run_experiment(edtlp(), wl, blade=blade2)
    two_m = run_experiment(mgps(), wl, blade=blade2)
    print(
        f"\n8 bootstraps: one Cell {one.makespan:.1f} s -> two Cells "
        f"{two_m.makespan:.1f} s ({one.makespan / two_m.makespan:.2f}x).\n"
        f"On the blade, 8 bootstraps leave 8 SPEs idle under plain EDTLP "
        f"({two_e.makespan:.1f} s); MGPS detects it and work-shares loops "
        f"({two_m.llp_invocations} LLP invocations -> {two_m.makespan:.1f} s)."
    )


if __name__ == "__main__":
    main()
