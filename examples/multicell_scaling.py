#!/usr/bin/env python
"""Scaling across Cell processors (the Figure 9 / Section 5.5 argument).

The paper argues that even though 100+ bootstrap analyses are task-rich,
multigrain scheduling matters at scale because *spreading* bootstraps
across blades leaves each Cell with low task-level parallelism — exactly
the regime where MGPS switches on loop-level parallelism.

Parameterized: ``--bootstraps``, ``--tasks`` and ``--dispatch`` change
the sweep; the defaults reproduce the original two-Cell story.  The
fleet shape declared here (``FLEET_*``) is also the configuration the
online serving demo (``serving_demo.py``) runs against, so the offline
scaling argument and the serving simulation describe the same hardware.
"""

import argparse

from repro import (
    BladeParams,
    Workload,
    edtlp,
    mgps,
    run_cluster_experiment,
    run_experiment,
)
from repro.analysis import format_table
from repro.serve.dispatch import available_dispatch_policies

# The blade fleet both this example and serving_demo.py simulate:
# dual-Cell blades (16 SPEs each), elastic between 2 and 4 blades.
FLEET_BLADE = BladeParams(n_cells=2)
FLEET_MIN_BLADES = 2
FLEET_MAX_BLADES = 4


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--bootstraps", type=int, nargs="+", default=[4, 8, 16, 32],
        metavar="N", help="bootstrap counts to sweep (default: 4 8 16 32)",
    )
    parser.add_argument(
        "--tasks", type=int, default=250, metavar="N",
        help="tasks per bootstrap (default: 250)",
    )
    parser.add_argument(
        "--dispatch", default="static-block",
        choices=[i.name for i in available_dispatch_policies()],
        help="bootstrap-partition policy for the cluster section "
             "(default: static-block, the paper's contiguous blocks)",
    )
    parser.add_argument("--seed", type=int, default=0)
    return parser


def main() -> None:
    args = build_parser().parse_args()
    rows = []
    for n_cells in (1, FLEET_BLADE.n_cells):
        blade = BladeParams(n_cells=n_cells)
        for b in args.bootstraps:
            wl = Workload(bootstraps=b, tasks_per_bootstrap=args.tasks,
                          seed=args.seed)
            e = run_experiment(edtlp(), wl, blade=blade, seed=args.seed)
            m = run_experiment(mgps(), wl, blade=blade, seed=args.seed)
            rows.append(
                [n_cells, b, e.makespan, m.makespan,
                 f"{e.makespan / m.makespan:.2f}x",
                 f"{m.spe_utilization:.0%}"]
            )
    print(
        format_table(
            ["cells", "bootstraps", "EDTLP [s]", "MGPS [s]", "MGPS gain",
             "SPE util"],
            rows,
            title="One vs two Cell processors",
        )
    )

    # The Section 5.5 punchline: spreading a fixed job across Cells
    # lowers per-Cell task parallelism, which is exactly where adaptive
    # loop-level parallelism pays off.
    wl = Workload(bootstraps=8, tasks_per_bootstrap=args.tasks,
                  seed=args.seed)
    one = run_experiment(mgps(), wl, seed=args.seed)
    two_e = run_experiment(edtlp(), wl, blade=FLEET_BLADE, seed=args.seed)
    two_m = run_experiment(mgps(), wl, blade=FLEET_BLADE, seed=args.seed)
    print(
        f"\n8 bootstraps: one Cell {one.makespan:.1f} s -> two Cells "
        f"{two_m.makespan:.1f} s ({one.makespan / two_m.makespan:.2f}x).\n"
        f"On the blade, 8 bootstraps leave 8 SPEs idle under plain EDTLP "
        f"({two_e.makespan:.1f} s); MGPS detects it and work-shares loops "
        f"({two_m.llp_invocations} LLP invocations -> {two_m.makespan:.1f} s)."
    )

    # Scale-out across the serving fleet's blade range, partitioned by
    # the selected dispatch policy (the same registry the online serving
    # layer uses).
    total = max(args.bootstraps) if args.bootstraps else 32
    rows = []
    for n_blades in range(FLEET_MIN_BLADES, FLEET_MAX_BLADES + 1):
        if n_blades > total:
            break
        c = run_cluster_experiment(
            mgps(), total, n_blades, blade=FLEET_BLADE,
            tasks_per_bootstrap=min(args.tasks, 100), seed=args.seed,
            dispatch=args.dispatch,
        )
        rows.append([n_blades, c.makespan,
                     f"{c.mean_spe_utilization:.0%}",
                     c.total_llp_invocations])
    print()
    print(
        format_table(
            ["blades", "makespan [s]", "mean SPE util", "LLP invocations"],
            rows,
            title=f"{total} bootstraps across the fleet "
                  f"({args.dispatch} dispatch)",
        )
    )


if __name__ == "__main__":
    main()
