#!/usr/bin/env python
"""Visualize what each scheduler does with the SPEs (the Figure 2 view).

Figure 2 of the paper contrasts the EDTLP scheduler (all SPEs busy,
off-loads from many MPI processes interleaved) with the Linux scheduler
(only two off-loads in flight, SPEs stranded).  This example records the
actual simulated schedule and draws it.
"""

from repro import Workload, edtlp, linux, mgps, run_experiment
from repro.analysis.timeline import render_timeline, utilization_bar
from repro.sim import Tracer


def show(name, spec, workload):
    tracer = Tracer(enabled=True)
    result = run_experiment(spec, workload, tracer=tracer)
    window = result.raw_makespan * 0.02  # an early slice of the schedule
    print(f"--- {name}: makespan {result.makespan:.1f} s, "
          f"SPE utilization {result.spe_utilization:.0%} ---")
    print(render_timeline(tracer, width=72, t_start=window,
                          t_end=window * 2))
    print()
    print(utilization_bar(tracer, result.raw_makespan))
    print()


def main() -> None:
    # 4 MPI processes x 1 bootstrap each, like the paper's Figure 2 setup
    # (two off-loaded task sizes, ~1:3 length ratio, shown per SPE).
    workload = Workload(bootstraps=4, tasks_per_bootstrap=250, seed=0)
    show("Linux scheduler (spin-wait, 10 ms quanta)", linux(), workload)
    show("EDTLP (switch on off-load)", edtlp(), workload)
    show("MGPS (EDTLP + adaptive loop parallelism)", mgps(), workload)
    print(
        "Under Linux only two SPEs ever run (one per PPE hardware thread,\n"
        "digits 0/1 then 2/3 after a quantum).  EDTLP interleaves all four\n"
        "processes.  MGPS additionally fans each task out to two SPEs\n"
        "(work-shared loops), filling the whole machine."
    )


if __name__ == "__main__":
    main()
